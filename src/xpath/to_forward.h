#ifndef TREEQ_XPATH_TO_FORWARD_H_
#define TREEQ_XPATH_TO_FORWARD_H_

#include <memory>

#include "cq/ast.h"
#include "util/status.h"
#include "xpath/ast.h"

/// \file to_forward.h
/// Backward-axis elimination for conjunctive Core XPath (Section 5,
/// "Evaluating Positive Queries using XPath" / [62]): a query using parent,
/// ancestor, preceding(-sibling) etc. is rewritten into an equivalent
/// *forward* query so a streaming processor can run it. The pipeline
/// composes three results of the paper:
///
///   conjunctive Core XPath --(ConjunctiveXPathToCq)--> CQ over trees
///     --(Theorem 5.1, cq/rewrite.h)--> union of acyclic queries whose
///        atoms are Child, Child+, NextSibling, NextSibling+ and in which
///        no node has two incoming atoms ("forest-shaped in a strong
///        sense")
///     --(ForwardXPathFromAcyclic)--> union of forward Core XPath paths.
///
/// The root context anchors the translation: disjuncts placing anything
/// above/before the context node are unsatisfiable at the root and are
/// dropped.

namespace treeq {
namespace xpath {

/// A conjunctive Core XPath query as a CQ: `context_var` stands for the
/// evaluation context (the root for unary queries) and `result_var` for the
/// selected node. They are the CQ's two head variables, in that order.
struct XPathCq {
  cq::ConjunctiveQuery query;
  int context_var = -1;
  int result_var = -1;
};

/// Translates a conjunctive (no union/or/not) Core XPath expression.
Result<XPathCq> ConjunctiveXPathToCq(const PathExpr& path);

/// Converts one acyclic output of RewriteToAcyclicUnion back into a forward
/// path (evaluated from the root). `context_var`/`result_var` are the
/// query's two head variables. Returns nullptr when the disjunct is
/// unsatisfiable at the root (e.g. it requires a node above the context).
Result<std::unique_ptr<PathExpr>> ForwardXPathFromAcyclic(
    const cq::ConjunctiveQuery& query);

/// Full pipeline: an equivalent forward Core XPath query for `path`
/// (conjunctive fragment; Unsupported otherwise). The result never uses a
/// backward axis; it may be a union. A query with no satisfiable disjunct
/// yields a canonical never-matching path.
Result<std::unique_ptr<PathExpr>> ToForwardXPath(const PathExpr& path);

}  // namespace xpath
}  // namespace treeq

#endif  // TREEQ_XPATH_TO_FORWARD_H_
