#ifndef TREEQ_XPATH_PARSER_H_
#define TREEQ_XPATH_PARSER_H_

#include <memory>
#include <string_view>

#include "util/status.h"
#include "xpath/ast.h"

/// \file parser.h
/// Concrete syntax for Core XPath. The abstract grammar of the paper plus
/// standard XPath sugar:
///
///   /catalog/product[reviews/review]//emph | //para
///   descendant::*[lab() = "a" and not(following::*[lab() = "b"])]
///
/// Rules:
///   - `axis::name` is step axis[lab() = name]; `axis::*` is a bare axis
///     step. Axis names are those of ParseAxis ("child", "descendant",
///     "parent", "ancestor", "following-sibling", ..., and the paper's
///     "Child+", "NextSibling*", ... aliases).
///   - a bare `name` means child::name; `*` means child::*; `.` means
///     self::*.
///   - `p1//p2` abbreviates p1/descendant-or-self::*/p2.
///   - A leading `/` anchors the first step at the context node itself
///     (so "/catalog/product" matches a root labeled catalog); a leading
///     `//` abbreviates descendant-or-self::*/....
///   - Qualifiers: `[q]` with q ::= path | lab() = L | q and q | q or q |
///     not(q); `(p | p)` parenthesizes path unions.
///
/// Unary queries are evaluated from the root (Section 3); the parser itself
/// is context-agnostic.

namespace treeq {
namespace xpath {

/// Default recursion bound (see ParserOptions::max_nesting).
inline constexpr int kDefaultMaxNesting = 512;

/// Parser knobs. Default-constructed options keep the historical behavior
/// (and error messages) bit for bit.
struct ParserOptions {
  /// Maximum expression nesting (parens, qualifiers) the recursive-descent
  /// parser accepts before failing with a ParseError; bounds parser stack
  /// growth on adversarial inputs like "a[a[a[...]]]".
  int max_nesting = kDefaultMaxNesting;
  /// Accept the paper's relational axis aliases ("Child+", "NextSibling*",
  /// "Following", ...) in axis position alongside the standard XPath names.
  /// When false, only the standard names ("descendant",
  /// "following-sibling", ...) parse; aliases fail with the same
  /// "unknown axis" ParseError an unknown name gets.
  bool paper_axes = true;
};

/// Parses a Core XPath expression.
Result<std::unique_ptr<PathExpr>> ParseXPath(std::string_view input);
Result<std::unique_ptr<PathExpr>> ParseXPath(std::string_view input,
                                             const ParserOptions& options);

}  // namespace xpath
}  // namespace treeq

#endif  // TREEQ_XPATH_PARSER_H_
