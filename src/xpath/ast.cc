#include "xpath/ast.h"

#include "util/status.h"

namespace treeq {
namespace xpath {

std::unique_ptr<PathExpr> PathExpr::MakeStep(Axis axis) {
  auto p = std::make_unique<PathExpr>();
  p->kind = Kind::kStep;
  p->axis = axis;
  return p;
}

std::unique_ptr<PathExpr> PathExpr::MakeSeq(std::unique_ptr<PathExpr> l,
                                            std::unique_ptr<PathExpr> r) {
  auto p = std::make_unique<PathExpr>();
  p->kind = Kind::kSeq;
  p->left = std::move(l);
  p->right = std::move(r);
  return p;
}

std::unique_ptr<PathExpr> PathExpr::MakeUnion(std::unique_ptr<PathExpr> l,
                                              std::unique_ptr<PathExpr> r) {
  auto p = std::make_unique<PathExpr>();
  p->kind = Kind::kUnion;
  p->left = std::move(l);
  p->right = std::move(r);
  return p;
}

std::unique_ptr<PathExpr> PathExpr::Clone() const {
  auto p = std::make_unique<PathExpr>();
  p->kind = kind;
  p->axis = axis;
  for (const auto& q : qualifiers) p->qualifiers.push_back(q->Clone());
  if (left != nullptr) p->left = left->Clone();
  if (right != nullptr) p->right = right->Clone();
  return p;
}

std::unique_ptr<Qualifier> Qualifier::MakePath(std::unique_ptr<PathExpr> p) {
  auto q = std::make_unique<Qualifier>();
  q->kind = Kind::kPath;
  q->path = std::move(p);
  return q;
}

std::unique_ptr<Qualifier> Qualifier::MakeLabel(std::string label) {
  auto q = std::make_unique<Qualifier>();
  q->kind = Kind::kLabel;
  q->label = std::move(label);
  return q;
}

std::unique_ptr<Qualifier> Qualifier::MakeAnd(std::unique_ptr<Qualifier> l,
                                              std::unique_ptr<Qualifier> r) {
  auto q = std::make_unique<Qualifier>();
  q->kind = Kind::kAnd;
  q->left = std::move(l);
  q->right = std::move(r);
  return q;
}

std::unique_ptr<Qualifier> Qualifier::MakeOr(std::unique_ptr<Qualifier> l,
                                             std::unique_ptr<Qualifier> r) {
  auto q = std::make_unique<Qualifier>();
  q->kind = Kind::kOr;
  q->left = std::move(l);
  q->right = std::move(r);
  return q;
}

std::unique_ptr<Qualifier> Qualifier::MakeNot(std::unique_ptr<Qualifier> inner) {
  auto q = std::make_unique<Qualifier>();
  q->kind = Kind::kNot;
  q->left = std::move(inner);
  return q;
}

std::unique_ptr<Qualifier> Qualifier::Clone() const {
  auto q = std::make_unique<Qualifier>();
  q->kind = kind;
  q->label = label;
  if (path != nullptr) q->path = path->Clone();
  if (left != nullptr) q->left = left->Clone();
  if (right != nullptr) q->right = right->Clone();
  return q;
}

int PathSize(const PathExpr& p) {
  switch (p.kind) {
    case PathExpr::Kind::kStep: {
      int size = 1;
      for (const auto& q : p.qualifiers) size += QualifierSize(*q);
      return size;
    }
    case PathExpr::Kind::kSeq:
    case PathExpr::Kind::kUnion:
      return 1 + PathSize(*p.left) + PathSize(*p.right);
  }
  return 0;
}

int QualifierSize(const Qualifier& q) {
  switch (q.kind) {
    case Qualifier::Kind::kPath:
      return 1 + PathSize(*q.path);
    case Qualifier::Kind::kLabel:
      return 1;
    case Qualifier::Kind::kAnd:
    case Qualifier::Kind::kOr:
      return 1 + QualifierSize(*q.left) + QualifierSize(*q.right);
    case Qualifier::Kind::kNot:
      return 1 + QualifierSize(*q.left);
  }
  return 0;
}

namespace {

bool QualIsPositive(const Qualifier& q) {
  switch (q.kind) {
    case Qualifier::Kind::kPath:
      return IsPositive(*q.path);
    case Qualifier::Kind::kLabel:
      return true;
    case Qualifier::Kind::kAnd:
    case Qualifier::Kind::kOr:
      return QualIsPositive(*q.left) && QualIsPositive(*q.right);
    case Qualifier::Kind::kNot:
      return false;
  }
  return false;
}

bool QualIsConjunctive(const Qualifier& q) {
  switch (q.kind) {
    case Qualifier::Kind::kPath:
      return IsConjunctive(*q.path);
    case Qualifier::Kind::kLabel:
      return true;
    case Qualifier::Kind::kAnd:
      return QualIsConjunctive(*q.left) && QualIsConjunctive(*q.right);
    case Qualifier::Kind::kOr:
    case Qualifier::Kind::kNot:
      return false;
  }
  return false;
}

bool QualIsForward(const Qualifier& q) {
  switch (q.kind) {
    case Qualifier::Kind::kPath:
      return IsForward(*q.path);
    case Qualifier::Kind::kLabel:
      return true;
    case Qualifier::Kind::kAnd:
    case Qualifier::Kind::kOr:
      return QualIsForward(*q.left) && QualIsForward(*q.right);
    case Qualifier::Kind::kNot:
      return QualIsForward(*q.left);
  }
  return false;
}

}  // namespace

bool IsPositive(const PathExpr& p) {
  switch (p.kind) {
    case PathExpr::Kind::kStep:
      for (const auto& q : p.qualifiers) {
        if (!QualIsPositive(*q)) return false;
      }
      return true;
    case PathExpr::Kind::kSeq:
    case PathExpr::Kind::kUnion:
      return IsPositive(*p.left) && IsPositive(*p.right);
  }
  return false;
}

bool IsConjunctive(const PathExpr& p) {
  switch (p.kind) {
    case PathExpr::Kind::kStep:
      for (const auto& q : p.qualifiers) {
        if (!QualIsConjunctive(*q)) return false;
      }
      return true;
    case PathExpr::Kind::kSeq:
      return IsConjunctive(*p.left) && IsConjunctive(*p.right);
    case PathExpr::Kind::kUnion:
      return false;
  }
  return false;
}

bool IsForward(const PathExpr& p) {
  switch (p.kind) {
    case PathExpr::Kind::kStep:
      if (!IsForwardAxis(p.axis)) return false;
      for (const auto& q : p.qualifiers) {
        if (!QualIsForward(*q)) return false;
      }
      return true;
    case PathExpr::Kind::kSeq:
    case PathExpr::Kind::kUnion:
      return IsForward(*p.left) && IsForward(*p.right);
  }
  return false;
}

std::string ToString(const PathExpr& p) {
  switch (p.kind) {
    case PathExpr::Kind::kStep: {
      std::string out = AxisName(p.axis);
      out += "::*";
      for (const auto& q : p.qualifiers) {
        out += "[" + ToString(*q) + "]";
      }
      return out;
    }
    case PathExpr::Kind::kSeq:
      return ToString(*p.left) + "/" + ToString(*p.right);
    case PathExpr::Kind::kUnion:
      return "(" + ToString(*p.left) + " | " + ToString(*p.right) + ")";
  }
  return "";
}

std::string ToString(const Qualifier& q) {
  switch (q.kind) {
    case Qualifier::Kind::kPath:
      return ToString(*q.path);
    case Qualifier::Kind::kLabel:
      return "lab() = \"" + q.label + "\"";
    case Qualifier::Kind::kAnd:
      return "(" + ToString(*q.left) + " and " + ToString(*q.right) + ")";
    case Qualifier::Kind::kOr:
      return "(" + ToString(*q.left) + " or " + ToString(*q.right) + ")";
    case Qualifier::Kind::kNot:
      return "not(" + ToString(*q.left) + ")";
  }
  return "";
}

}  // namespace xpath
}  // namespace treeq
