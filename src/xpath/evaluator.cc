#include "xpath/evaluator.h"

#include "obs/obs.h"
#include "tree/label_index.h"
#include "tree/par_axes.h"
#include "tree/partition.h"

namespace treeq {
namespace xpath {

namespace {

/// Evaluation context: the tree, its orders, and (optionally) the
/// document's cached label index. With an index, the label-filter step is a
/// word-wise copy of a prebuilt bitmap; without, it falls back to the
/// arena scan.
///
/// When `exec` is set, every subexpression operation charges the
/// ExecContext; the first failed charge lands in `*abort` and all further
/// recursion short-circuits (returning empty sets that the entry point
/// discards in favor of the abort status).
struct EvalCtx {
  const Tree& tree;
  const TreeOrders& orders;
  const LabelIndex* labels = nullptr;
  const ExecContext* exec = nullptr;
  Status* abort = nullptr;
  // Parallel evaluation (EvalQueryFromRootParallel): when all three are
  // set, axis-image steps route through ParAxisImage, which forks large
  // context sets across the document's subtree partitions.
  const TreePartition* partition = nullptr;
  const par::ParOptions* par = nullptr;
  par::ParStats* pstats = nullptr;
  // Cross-query axis-image memo (tree/axes.h); serial evaluations consult
  // it per step. Mutually exclusive with the parallel route above — the
  // parallel kernels charge per-partition shares that a memo hit would
  // skip, so parallel runs stay unmemoized.
  AxisImageMemo* memo = nullptr;
};

/// One axis-image step: the serial kernel with the serial charge schedule
/// (1 + |from|), or — under EvalQueryFromRootParallel — the partition-
/// parallel kernel, which keeps that exact schedule for small inputs and
/// charges per-partition shares for forked ones. Returns false after
/// recording the abort status when a budget trips.
bool StepImage(const EvalCtx& ctx, Axis axis, const NodeSet& from,
               NodeSet* to) {
  if (ctx.partition != nullptr && ctx.par != nullptr && ctx.exec != nullptr) {
    Status s = par::ParAxisImage(ctx.tree, ctx.orders, *ctx.partition, axis,
                                 from, to, *ctx.par, *ctx.exec, ctx.pstats);
    if (!s.ok()) {
      *ctx.abort = std::move(s);
      return false;
    }
    return true;
  }
  if (ctx.memo != nullptr && ctx.memo->Lookup(axis, from, to)) {
    // A memo hit charges the lookup actually paid — one op plus the words
    // fingerprinted — not the O(|from|) kernel work it saved. Budgets
    // meter real cost, so a hit must not burn budget for skipped work.
    if (ctx.exec != nullptr) {
      Status s =
          ctx.exec->Charge(1 + static_cast<uint64_t>(from.num_words()));
      if (!s.ok()) {
        *ctx.abort = std::move(s);
        return false;
      }
    }
    return true;
  }
  if (ctx.exec != nullptr) {
    Status s = ctx.exec->Charge(1 + static_cast<uint64_t>(from.size()));
    if (!s.ok()) {
      *ctx.abort = std::move(s);
      return false;
    }
  }
  AxisImage(ctx.tree, ctx.orders, axis, from, to);
  if (ctx.memo != nullptr) ctx.memo->Store(axis, from, *to);
  return true;
}

/// True once a bounded evaluation has tripped a limit.
bool Aborted(const EvalCtx& ctx) {
  return ctx.abort != nullptr && !ctx.abort->ok();
}

/// Charges `units` against the context's budget; returns false (recording
/// the abort status) when a limit trips.
bool ChargeOp(const EvalCtx& ctx, uint64_t units) {
  if (ctx.exec == nullptr) return true;
  Status s = ctx.exec->Charge(units);
  if (s.ok()) return true;
  *ctx.abort = std::move(s);
  return false;
}

NodeSet EvalPathCtx(const EvalCtx& ctx, const PathExpr& path,
                    const NodeSet& context);
NodeSet EvalQualifierCtx(const EvalCtx& ctx, const Qualifier& q);
NodeSet EvalPathExistsCtx(const EvalCtx& ctx, const PathExpr& path,
                          const NodeSet& target);

/// Intersection of the step's qualifier sets with `set`, in place.
void ApplyQualifiers(const EvalCtx& ctx, const PathExpr& step, NodeSet* set) {
  for (const auto& q : step.qualifiers) {
    if (Aborted(ctx)) return;
    TREEQ_OBS_INC("xpath.qualifier_ops");
    NodeSet b = EvalQualifierCtx(ctx, *q);
    set->IntersectWith(b);
  }
}

NodeSet EvalPathCtx(const EvalCtx& ctx, const PathExpr& path,
                    const NodeSet& context) {
  const int n = ctx.tree.num_nodes();
  if (Aborted(ctx)) return NodeSet(n);
  switch (path.kind) {
    case PathExpr::Kind::kStep: {
      NodeSet out(n);
      TREEQ_OBS_INC("xpath.axis_ops");
      TREEQ_OBS_HISTOGRAM("xpath.context_size", context.size());
      if (!StepImage(ctx, path.axis, context, &out)) return out;
      ApplyQualifiers(ctx, path, &out);
      TREEQ_OBS_HISTOGRAM("xpath.result_size", out.size());
      return out;
    }
    case PathExpr::Kind::kSeq: {
      NodeSet mid = EvalPathCtx(ctx, *path.left, context);
      return EvalPathCtx(ctx, *path.right, mid);
    }
    case PathExpr::Kind::kUnion: {
      NodeSet out = EvalPathCtx(ctx, *path.left, context);
      NodeSet rhs = EvalPathCtx(ctx, *path.right, context);
      out.UnionWith(rhs);
      return out;
    }
  }
  TREEQ_CHECK(false);
  return NodeSet(n);
}

NodeSet EvalQualifierCtx(const EvalCtx& ctx, const Qualifier& q) {
  const int n = ctx.tree.num_nodes();
  if (Aborted(ctx) || !ChargeOp(ctx, 1 + static_cast<uint64_t>(n) / 64)) {
    return NodeSet(n);
  }
  switch (q.kind) {
    case Qualifier::Kind::kPath:
      return EvalPathExistsCtx(ctx, *q.path, NodeSet::All(n));
    case Qualifier::Kind::kLabel: {
      LabelId label = ctx.tree.label_table().Lookup(q.label);
      if (label == kNullLabel) return NodeSet(n);
      if (ctx.labels != nullptr) {
        return ctx.labels->Set(label);  // word-wise copy of the cached set
      }
      NodeSet out(n);
      for (NodeId v = 0; v < n; ++v) {
        if (ctx.tree.HasLabel(v, label)) out.Insert(v);
      }
      return out;
    }
    case Qualifier::Kind::kAnd: {
      NodeSet out = EvalQualifierCtx(ctx, *q.left);
      NodeSet rhs = EvalQualifierCtx(ctx, *q.right);
      out.IntersectWith(rhs);
      return out;
    }
    case Qualifier::Kind::kOr: {
      NodeSet out = EvalQualifierCtx(ctx, *q.left);
      NodeSet rhs = EvalQualifierCtx(ctx, *q.right);
      out.UnionWith(rhs);
      return out;
    }
    case Qualifier::Kind::kNot: {
      NodeSet out = EvalQualifierCtx(ctx, *q.left);
      out.Complement();
      return out;
    }
  }
  TREEQ_CHECK(false);
  return NodeSet(n);
}

NodeSet EvalPathExistsCtx(const EvalCtx& ctx, const PathExpr& path,
                          const NodeSet& target) {
  const int n = ctx.tree.num_nodes();
  if (Aborted(ctx)) return NodeSet(n);
  switch (path.kind) {
    case PathExpr::Kind::kStep: {
      // n reaches the target via this step iff some node in
      // target ∩ (qualifier sets) is an axis-successor of n.
      NodeSet restricted = target;
      ApplyQualifiers(ctx, path, &restricted);
      NodeSet out(n);
      TREEQ_OBS_INC("xpath.axis_ops");
      TREEQ_OBS_HISTOGRAM("xpath.context_size", restricted.size());
      if (!StepImage(ctx, InverseAxis(path.axis), restricted, &out)) {
        return out;
      }
      TREEQ_OBS_HISTOGRAM("xpath.result_size", out.size());
      return out;
    }
    case PathExpr::Kind::kSeq: {
      NodeSet mid = EvalPathExistsCtx(ctx, *path.right, target);
      return EvalPathExistsCtx(ctx, *path.left, mid);
    }
    case PathExpr::Kind::kUnion: {
      NodeSet out = EvalPathExistsCtx(ctx, *path.left, target);
      NodeSet rhs = EvalPathExistsCtx(ctx, *path.right, target);
      out.UnionWith(rhs);
      return out;
    }
  }
  TREEQ_CHECK(false);
  return NodeSet(n);
}

}  // namespace

NodeSet EvalPath(const Tree& tree, const TreeOrders& orders,
                 const PathExpr& path, const NodeSet& context) {
  return EvalPathCtx(EvalCtx{tree, orders}, path, context);
}

NodeSet EvalQualifier(const Tree& tree, const TreeOrders& orders,
                      const Qualifier& q) {
  return EvalQualifierCtx(EvalCtx{tree, orders}, q);
}

NodeSet EvalPathExists(const Tree& tree, const TreeOrders& orders,
                       const PathExpr& path, const NodeSet& target) {
  return EvalPathExistsCtx(EvalCtx{tree, orders}, path, target);
}

NodeSet EvalQueryFromRoot(const Tree& tree, const TreeOrders& orders,
                          const PathExpr& path) {
  TREEQ_OBS_SPAN("xpath.eval");
  return EvalPath(tree, orders, path,
                  NodeSet::Singleton(tree.num_nodes(), tree.root()));
}

NodeSet EvalPath(const Document& doc, const PathExpr& path,
                 const NodeSet& context) {
  return EvalPathCtx(EvalCtx{doc.tree(), doc.orders(), &doc.label_index()},
                     path, context);
}

NodeSet EvalQualifier(const Document& doc, const Qualifier& q) {
  return EvalQualifierCtx(EvalCtx{doc.tree(), doc.orders(),
                                  &doc.label_index()},
                          q);
}

NodeSet EvalPathExists(const Document& doc, const PathExpr& path,
                       const NodeSet& target) {
  return EvalPathExistsCtx(
      EvalCtx{doc.tree(), doc.orders(), &doc.label_index()}, path, target);
}

NodeSet EvalQueryFromRoot(const Document& doc, const PathExpr& path) {
  TREEQ_OBS_SPAN("xpath.eval");
  return EvalPath(doc, path,
                  NodeSet::Singleton(doc.num_nodes(), doc.tree().root()));
}

Result<NodeSet> EvalPath(const Document& doc, const PathExpr& path,
                         const NodeSet& context, const ExecContext& exec) {
  Status abort;
  EvalCtx ctx{doc.tree(), doc.orders(), &doc.label_index(), &exec, &abort};
  NodeSet out = EvalPathCtx(ctx, path, context);
  if (!abort.ok()) return abort;
  return out;
}

Result<NodeSet> EvalQueryFromRoot(const Document& doc, const PathExpr& path,
                                  const ExecContext& exec) {
  TREEQ_OBS_SPAN("xpath.eval");
  return EvalPath(doc, path,
                  NodeSet::Singleton(doc.num_nodes(), doc.tree().root()),
                  exec);
}

Result<NodeSet> EvalQueryFromRoot(const Tree& tree, const TreeOrders& orders,
                                  const PathExpr& path,
                                  const ExecContext& exec) {
  TREEQ_OBS_SPAN("xpath.eval");
  Status abort;
  EvalCtx ctx{tree, orders, nullptr, &exec, &abort};
  NodeSet out = EvalPathCtx(
      ctx, path, NodeSet::Singleton(tree.num_nodes(), tree.root()));
  if (!abort.ok()) return abort;
  return out;
}

Result<NodeSet> EvalQueryFromRoot(const Document& doc, const PathExpr& path,
                                  const ExecContext& exec,
                                  AxisImageMemo* memo) {
  TREEQ_OBS_SPAN("xpath.eval");
  Status abort;
  EvalCtx ctx{doc.tree(), doc.orders(), &doc.label_index(), &exec, &abort};
  ctx.memo = memo;
  NodeSet out = EvalPathCtx(
      ctx, path, NodeSet::Singleton(doc.num_nodes(), doc.tree().root()));
  if (!abort.ok()) return abort;
  return out;
}

Result<NodeSet> EvalQueryFromRootParallel(const Document& doc,
                                          const PathExpr& path,
                                          const ExecContext& exec,
                                          const par::ParOptions& options,
                                          par::ParStats* stats) {
  TREEQ_OBS_SPAN("xpath.eval");
  Status abort;
  EvalCtx ctx{doc.tree(),    doc.orders(), &doc.label_index(), &exec,
              &abort,        &doc.partition(), &options,       stats};
  NodeSet out = EvalPathCtx(
      ctx, path, NodeSet::Singleton(doc.num_nodes(), doc.tree().root()));
  if (!abort.ok()) return abort;
  return out;
}

}  // namespace xpath
}  // namespace treeq
