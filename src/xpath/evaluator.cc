#include "xpath/evaluator.h"

#include "obs/obs.h"
#include "tree/label_index.h"

namespace treeq {
namespace xpath {

namespace {

/// Evaluation context: the tree, its orders, and (optionally) the
/// document's cached label index. With an index, the label-filter step is a
/// word-wise copy of a prebuilt bitmap; without, it falls back to the
/// arena scan.
struct EvalCtx {
  const Tree& tree;
  const TreeOrders& orders;
  const LabelIndex* labels = nullptr;
};

NodeSet EvalPathCtx(const EvalCtx& ctx, const PathExpr& path,
                    const NodeSet& context);
NodeSet EvalQualifierCtx(const EvalCtx& ctx, const Qualifier& q);
NodeSet EvalPathExistsCtx(const EvalCtx& ctx, const PathExpr& path,
                          const NodeSet& target);

/// Intersection of the step's qualifier sets with `set`, in place.
void ApplyQualifiers(const EvalCtx& ctx, const PathExpr& step, NodeSet* set) {
  for (const auto& q : step.qualifiers) {
    TREEQ_OBS_INC("xpath.qualifier_ops");
    NodeSet b = EvalQualifierCtx(ctx, *q);
    set->IntersectWith(b);
  }
}

NodeSet EvalPathCtx(const EvalCtx& ctx, const PathExpr& path,
                    const NodeSet& context) {
  const int n = ctx.tree.num_nodes();
  switch (path.kind) {
    case PathExpr::Kind::kStep: {
      NodeSet out(n);
      TREEQ_OBS_INC("xpath.axis_ops");
      TREEQ_OBS_HISTOGRAM("xpath.context_size", context.size());
      AxisImage(ctx.tree, ctx.orders, path.axis, context, &out);
      ApplyQualifiers(ctx, path, &out);
      TREEQ_OBS_HISTOGRAM("xpath.result_size", out.size());
      return out;
    }
    case PathExpr::Kind::kSeq: {
      NodeSet mid = EvalPathCtx(ctx, *path.left, context);
      return EvalPathCtx(ctx, *path.right, mid);
    }
    case PathExpr::Kind::kUnion: {
      NodeSet out = EvalPathCtx(ctx, *path.left, context);
      NodeSet rhs = EvalPathCtx(ctx, *path.right, context);
      out.UnionWith(rhs);
      return out;
    }
  }
  TREEQ_CHECK(false);
  return NodeSet(n);
}

NodeSet EvalQualifierCtx(const EvalCtx& ctx, const Qualifier& q) {
  const int n = ctx.tree.num_nodes();
  switch (q.kind) {
    case Qualifier::Kind::kPath:
      return EvalPathExistsCtx(ctx, *q.path, NodeSet::All(n));
    case Qualifier::Kind::kLabel: {
      LabelId label = ctx.tree.label_table().Lookup(q.label);
      if (label == kNullLabel) return NodeSet(n);
      if (ctx.labels != nullptr) {
        return ctx.labels->Set(label);  // word-wise copy of the cached set
      }
      NodeSet out(n);
      for (NodeId v = 0; v < n; ++v) {
        if (ctx.tree.HasLabel(v, label)) out.Insert(v);
      }
      return out;
    }
    case Qualifier::Kind::kAnd: {
      NodeSet out = EvalQualifierCtx(ctx, *q.left);
      NodeSet rhs = EvalQualifierCtx(ctx, *q.right);
      out.IntersectWith(rhs);
      return out;
    }
    case Qualifier::Kind::kOr: {
      NodeSet out = EvalQualifierCtx(ctx, *q.left);
      NodeSet rhs = EvalQualifierCtx(ctx, *q.right);
      out.UnionWith(rhs);
      return out;
    }
    case Qualifier::Kind::kNot: {
      NodeSet out = EvalQualifierCtx(ctx, *q.left);
      out.Complement();
      return out;
    }
  }
  TREEQ_CHECK(false);
  return NodeSet(n);
}

NodeSet EvalPathExistsCtx(const EvalCtx& ctx, const PathExpr& path,
                          const NodeSet& target) {
  const int n = ctx.tree.num_nodes();
  switch (path.kind) {
    case PathExpr::Kind::kStep: {
      // n reaches the target via this step iff some node in
      // target ∩ (qualifier sets) is an axis-successor of n.
      NodeSet restricted = target;
      ApplyQualifiers(ctx, path, &restricted);
      NodeSet out(n);
      TREEQ_OBS_INC("xpath.axis_ops");
      TREEQ_OBS_HISTOGRAM("xpath.context_size", restricted.size());
      AxisImage(ctx.tree, ctx.orders, InverseAxis(path.axis), restricted,
                &out);
      TREEQ_OBS_HISTOGRAM("xpath.result_size", out.size());
      return out;
    }
    case PathExpr::Kind::kSeq: {
      NodeSet mid = EvalPathExistsCtx(ctx, *path.right, target);
      return EvalPathExistsCtx(ctx, *path.left, mid);
    }
    case PathExpr::Kind::kUnion: {
      NodeSet out = EvalPathExistsCtx(ctx, *path.left, target);
      NodeSet rhs = EvalPathExistsCtx(ctx, *path.right, target);
      out.UnionWith(rhs);
      return out;
    }
  }
  TREEQ_CHECK(false);
  return NodeSet(n);
}

}  // namespace

NodeSet EvalPath(const Tree& tree, const TreeOrders& orders,
                 const PathExpr& path, const NodeSet& context) {
  return EvalPathCtx(EvalCtx{tree, orders}, path, context);
}

NodeSet EvalQualifier(const Tree& tree, const TreeOrders& orders,
                      const Qualifier& q) {
  return EvalQualifierCtx(EvalCtx{tree, orders}, q);
}

NodeSet EvalPathExists(const Tree& tree, const TreeOrders& orders,
                       const PathExpr& path, const NodeSet& target) {
  return EvalPathExistsCtx(EvalCtx{tree, orders}, path, target);
}

NodeSet EvalQueryFromRoot(const Tree& tree, const TreeOrders& orders,
                          const PathExpr& path) {
  TREEQ_OBS_SPAN("xpath.eval");
  return EvalPath(tree, orders, path,
                  NodeSet::Singleton(tree.num_nodes(), tree.root()));
}

NodeSet EvalPath(const Document& doc, const PathExpr& path,
                 const NodeSet& context) {
  return EvalPathCtx(EvalCtx{doc.tree(), doc.orders(), &doc.label_index()},
                     path, context);
}

NodeSet EvalQualifier(const Document& doc, const Qualifier& q) {
  return EvalQualifierCtx(EvalCtx{doc.tree(), doc.orders(),
                                  &doc.label_index()},
                          q);
}

NodeSet EvalPathExists(const Document& doc, const PathExpr& path,
                       const NodeSet& target) {
  return EvalPathExistsCtx(
      EvalCtx{doc.tree(), doc.orders(), &doc.label_index()}, path, target);
}

NodeSet EvalQueryFromRoot(const Document& doc, const PathExpr& path) {
  TREEQ_OBS_SPAN("xpath.eval");
  return EvalPath(doc, path,
                  NodeSet::Singleton(doc.num_nodes(), doc.tree().root()));
}

}  // namespace xpath
}  // namespace treeq
