#include "xpath/evaluator.h"

#include "obs/obs.h"

namespace treeq {
namespace xpath {

namespace {

/// Intersection of the step's qualifier sets with `set`, in place.
void ApplyQualifiers(const Tree& tree, const TreeOrders& orders,
                     const PathExpr& step, NodeSet* set) {
  for (const auto& q : step.qualifiers) {
    TREEQ_OBS_INC("xpath.qualifier_ops");
    NodeSet b = EvalQualifier(tree, orders, *q);
    set->IntersectWith(b);
  }
}

}  // namespace

NodeSet EvalPath(const Tree& tree, const TreeOrders& orders,
                 const PathExpr& path, const NodeSet& context) {
  const int n = tree.num_nodes();
  switch (path.kind) {
    case PathExpr::Kind::kStep: {
      NodeSet out(n);
      TREEQ_OBS_INC("xpath.axis_ops");
      TREEQ_OBS_HISTOGRAM("xpath.context_size", context.size());
      AxisImage(tree, orders, path.axis, context, &out);
      ApplyQualifiers(tree, orders, path, &out);
      TREEQ_OBS_HISTOGRAM("xpath.result_size", out.size());
      return out;
    }
    case PathExpr::Kind::kSeq: {
      NodeSet mid = EvalPath(tree, orders, *path.left, context);
      return EvalPath(tree, orders, *path.right, mid);
    }
    case PathExpr::Kind::kUnion: {
      NodeSet out = EvalPath(tree, orders, *path.left, context);
      NodeSet rhs = EvalPath(tree, orders, *path.right, context);
      out.UnionWith(rhs);
      return out;
    }
  }
  TREEQ_CHECK(false);
  return NodeSet(n);
}

NodeSet EvalQualifier(const Tree& tree, const TreeOrders& orders,
                      const Qualifier& q) {
  const int n = tree.num_nodes();
  switch (q.kind) {
    case Qualifier::Kind::kPath:
      return EvalPathExists(tree, orders, *q.path, NodeSet::All(n));
    case Qualifier::Kind::kLabel: {
      NodeSet out(n);
      LabelId label = tree.label_table().Lookup(q.label);
      if (label == kNullLabel) return out;
      for (NodeId v = 0; v < n; ++v) {
        if (tree.HasLabel(v, label)) out.Insert(v);
      }
      return out;
    }
    case Qualifier::Kind::kAnd: {
      NodeSet out = EvalQualifier(tree, orders, *q.left);
      NodeSet rhs = EvalQualifier(tree, orders, *q.right);
      out.IntersectWith(rhs);
      return out;
    }
    case Qualifier::Kind::kOr: {
      NodeSet out = EvalQualifier(tree, orders, *q.left);
      NodeSet rhs = EvalQualifier(tree, orders, *q.right);
      out.UnionWith(rhs);
      return out;
    }
    case Qualifier::Kind::kNot: {
      NodeSet out = EvalQualifier(tree, orders, *q.left);
      out.Complement();
      return out;
    }
  }
  TREEQ_CHECK(false);
  return NodeSet(n);
}

NodeSet EvalPathExists(const Tree& tree, const TreeOrders& orders,
                       const PathExpr& path, const NodeSet& target) {
  const int n = tree.num_nodes();
  switch (path.kind) {
    case PathExpr::Kind::kStep: {
      // n reaches the target via this step iff some node in
      // target ∩ (qualifier sets) is an axis-successor of n.
      NodeSet restricted = target;
      ApplyQualifiers(tree, orders, path, &restricted);
      NodeSet out(n);
      TREEQ_OBS_INC("xpath.axis_ops");
      TREEQ_OBS_HISTOGRAM("xpath.context_size", restricted.size());
      AxisImage(tree, orders, InverseAxis(path.axis), restricted, &out);
      TREEQ_OBS_HISTOGRAM("xpath.result_size", out.size());
      return out;
    }
    case PathExpr::Kind::kSeq: {
      NodeSet mid = EvalPathExists(tree, orders, *path.right, target);
      return EvalPathExists(tree, orders, *path.left, mid);
    }
    case PathExpr::Kind::kUnion: {
      NodeSet out = EvalPathExists(tree, orders, *path.left, target);
      NodeSet rhs = EvalPathExists(tree, orders, *path.right, target);
      out.UnionWith(rhs);
      return out;
    }
  }
  TREEQ_CHECK(false);
  return NodeSet(n);
}

NodeSet EvalQueryFromRoot(const Tree& tree, const TreeOrders& orders,
                          const PathExpr& path) {
  TREEQ_OBS_SPAN("xpath.eval");
  return EvalPath(tree, orders, path,
                  NodeSet::Singleton(tree.num_nodes(), tree.root()));
}

}  // namespace xpath
}  // namespace treeq
