#include "xpath/parser.h"

#include <cctype>
#include <string>

namespace treeq {
namespace xpath {
namespace {

// The nesting bound (ParserOptions::max_nesting, default 512) exists
// because each level costs several call-stack frames: without it a
// pathological "a[a[a[...]]]" input overflows the stack. 512 levels admit
// any realistic query while keeping peak parser stack well under common
// stack limits, even with sanitizer-inflated frames.
class XPathParser {
 public:
  XPathParser(std::string_view input, const ParserOptions& options)
      : input_(input), options_(options) {}

  Result<std::unique_ptr<PathExpr>> Parse() {
    Skip();
    bool absolute = false;
    bool initial_descendant = false;
    if (Match("//")) {
      absolute = true;
      initial_descendant = true;
    } else if (Match("/")) {
      absolute = true;
    }
    TREEQ_ASSIGN_OR_RETURN(
        std::unique_ptr<PathExpr> path,
        ParseUnion(/*anchor_first_step=*/absolute && !initial_descendant));
    if (initial_descendant) {
      path = PathExpr::MakeSeq(PathExpr::MakeStep(Axis::kDescendantOrSelf),
                               std::move(path));
    }
    Skip();
    if (!Eof()) return Error("trailing input");
    return path;
  }

 private:
  bool Eof() const { return pos_ >= input_.size(); }
  char Peek() const { return Eof() ? '\0' : input_[pos_]; }

  void Skip() {
    while (!Eof() && std::isspace(static_cast<unsigned char>(Peek()))) ++pos_;
  }

  Status Error(const std::string& msg) const {
    return Status::ParseError(msg + " at offset " + std::to_string(pos_));
  }

  /// Consumes `token` (after whitespace) if present.
  bool Match(std::string_view token) {
    Skip();
    if (input_.substr(pos_).starts_with(token)) {
      pos_ += token.size();
      return true;
    }
    return false;
  }

  /// Consumes a keyword: like Match but must not be followed by a name char.
  bool MatchWord(std::string_view word) {
    Skip();
    if (!input_.substr(pos_).starts_with(word)) return false;
    size_t end = pos_ + word.size();
    if (end < input_.size() && IsNameChar(input_[end])) return false;
    pos_ = end;
    return true;
  }

  static bool IsNameChar(char c) {
    return std::isalnum(static_cast<unsigned char>(c)) || c == '_' ||
           c == '-' || c == '+' || c == '*' || c == '#' || c == '@' ||
           c == '=';
  }

  static bool IsNameStart(char c) {
    return std::isalnum(static_cast<unsigned char>(c)) || c == '_' ||
           c == '#' || c == '@';
  }

  Result<std::string> ParseName() {
    Skip();
    if (Eof() || !IsNameStart(Peek())) return Error("expected a name");
    size_t start = pos_;
    while (!Eof() && IsNameChar(Peek())) ++pos_;
    return std::string(input_.substr(start, pos_ - start));
  }

  Result<std::string> ParseLabelOperand() {
    Skip();
    if (Peek() == '"') {
      ++pos_;
      size_t start = pos_;
      while (!Eof() && Peek() != '"') ++pos_;
      if (Eof()) return Error("unterminated string");
      std::string s(input_.substr(start, pos_ - start));
      ++pos_;
      return s;
    }
    return ParseName();
  }

  /// RAII nesting-depth tracker. Every recursion cycle in this grammar goes
  /// through ParseUnion or ParseQualOr, so guarding those two bounds the
  /// whole parse.
  class DepthGuard {
   public:
    explicit DepthGuard(int* depth) : depth_(depth) { ++*depth_; }
    ~DepthGuard() { --*depth_; }

   private:
    int* depth_;
  };

  Status NestingError() {
    return Error("expression nesting deeper than " +
                 std::to_string(options_.max_nesting));
  }

  Result<std::unique_ptr<PathExpr>> ParseUnion(bool anchor_first_step) {
    DepthGuard guard(&depth_);
    if (depth_ > options_.max_nesting) return NestingError();
    TREEQ_ASSIGN_OR_RETURN(std::unique_ptr<PathExpr> left,
                           ParseSeq(anchor_first_step));
    while (Match("|")) {
      TREEQ_ASSIGN_OR_RETURN(std::unique_ptr<PathExpr> right,
                             ParseSeq(anchor_first_step));
      left = PathExpr::MakeUnion(std::move(left), std::move(right));
    }
    return left;
  }

  Result<std::unique_ptr<PathExpr>> ParseSeq(bool anchor_first_step) {
    std::unique_ptr<PathExpr> left;
    if (Match("//")) {
      // A "//"-prefixed branch (e.g. inside "(//a | //b)"): treat as
      // descendant-or-self from the context.
      TREEQ_ASSIGN_OR_RETURN(std::unique_ptr<PathExpr> first,
                             ParseStep(/*anchored=*/false));
      left = PathExpr::MakeSeq(PathExpr::MakeStep(Axis::kDescendantOrSelf),
                               std::move(first));
    } else {
      TREEQ_ASSIGN_OR_RETURN(left, ParseStep(anchor_first_step));
    }
    return ParseSeqTail(std::move(left));
  }

  Result<std::unique_ptr<PathExpr>> ParseSeqTail(
      std::unique_ptr<PathExpr> left) {
    for (;;) {
      if (Match("//")) {
        TREEQ_ASSIGN_OR_RETURN(std::unique_ptr<PathExpr> right,
                               ParseStep(/*anchored=*/false));
        left = PathExpr::MakeSeq(
            std::move(left),
            PathExpr::MakeSeq(PathExpr::MakeStep(Axis::kDescendantOrSelf),
                              std::move(right)));
      } else if (Match("/")) {
        TREEQ_ASSIGN_OR_RETURN(std::unique_ptr<PathExpr> right,
                               ParseStep(/*anchored=*/false));
        left = PathExpr::MakeSeq(std::move(left), std::move(right));
      } else {
        return left;
      }
    }
  }

  // anchored: a leading "/" anchors the first step at the context node, so a
  // bare name test uses the self axis instead of child.
  Result<std::unique_ptr<PathExpr>> ParseStep(bool anchored) {
    Skip();
    if (Match("(")) {
      TREEQ_ASSIGN_OR_RETURN(std::unique_ptr<PathExpr> inner,
                             ParseUnion(anchored));
      if (!Match(")")) return Error("expected ')'");
      TREEQ_RETURN_IF_ERROR(ParseQualifiers(inner.get()));
      return inner;
    }
    if (Match(".")) {
      auto step = PathExpr::MakeStep(Axis::kSelf);
      TREEQ_RETURN_IF_ERROR(ParseQualifiers(step.get()));
      return step;
    }
    Axis axis = anchored ? Axis::kSelf : Axis::kChild;
    std::string name_test;
    if (Match("*")) {
      // child::* (or self::* when anchored)
    } else {
      TREEQ_ASSIGN_OR_RETURN(std::string first, ParseName());
      if (Match("::")) {
        Result<Axis> parsed = ParseAxis(first);
        if (!parsed.ok()) return Error("unknown axis '" + first + "'");
        axis = parsed.value();
        // Dialect gate: with paper_axes off, only the standard XPath
        // spelling of each axis is admitted — a paper alias ("Child+",
        // "NextSibling*", ...) parses to an axis whose canonical name
        // differs from what was typed.
        if (!options_.paper_axes && first != AxisName(axis)) {
          return Error("unknown axis '" + first + "'");
        }
        if (!Match("*")) {
          TREEQ_ASSIGN_OR_RETURN(name_test, ParseName());
        }
      } else {
        name_test = first;
      }
    }
    auto step = PathExpr::MakeStep(axis);
    if (!name_test.empty()) {
      step->qualifiers.push_back(Qualifier::MakeLabel(name_test));
    }
    TREEQ_RETURN_IF_ERROR(ParseQualifiers(step.get()));
    return step;
  }

  Status ParseQualifiers(PathExpr* step) {
    while (Match("[")) {
      TREEQ_ASSIGN_OR_RETURN(std::unique_ptr<Qualifier> q, ParseQualOr());
      if (!Match("]")) return Error("expected ']'");
      step->qualifiers.push_back(std::move(q));
    }
    return Status::OK();
  }

  Result<std::unique_ptr<Qualifier>> ParseQualOr() {
    DepthGuard guard(&depth_);
    if (depth_ > options_.max_nesting) return NestingError();
    TREEQ_ASSIGN_OR_RETURN(std::unique_ptr<Qualifier> left, ParseQualAnd());
    while (MatchWord("or")) {
      TREEQ_ASSIGN_OR_RETURN(std::unique_ptr<Qualifier> right, ParseQualAnd());
      left = Qualifier::MakeOr(std::move(left), std::move(right));
    }
    return left;
  }

  Result<std::unique_ptr<Qualifier>> ParseQualAnd() {
    TREEQ_ASSIGN_OR_RETURN(std::unique_ptr<Qualifier> left, ParseQualPrim());
    while (MatchWord("and")) {
      TREEQ_ASSIGN_OR_RETURN(std::unique_ptr<Qualifier> right,
                             ParseQualPrim());
      left = Qualifier::MakeAnd(std::move(left), std::move(right));
    }
    return left;
  }

  Result<std::unique_ptr<Qualifier>> ParseQualPrim() {
    Skip();
    if (MatchWord("not")) {
      if (!Match("(")) return Error("expected '(' after not");
      TREEQ_ASSIGN_OR_RETURN(std::unique_ptr<Qualifier> inner, ParseQualOr());
      if (!Match(")")) return Error("expected ')'");
      return Qualifier::MakeNot(std::move(inner));
    }
    // "lab() = L"
    size_t save = pos_;
    if (MatchWord("lab")) {
      if (Match("(") && Match(")") && Match("=")) {
        TREEQ_ASSIGN_OR_RETURN(std::string label, ParseLabelOperand());
        return Qualifier::MakeLabel(std::move(label));
      }
      pos_ = save;
    }
    // Otherwise: an existential path (which may itself start with '('), or a
    // parenthesized Boolean expression "(q1 and q2)". Try the path reading
    // first and backtrack to the Boolean reading on failure.
    save = pos_;
    Result<std::unique_ptr<PathExpr>> path =
        ParseUnion(/*anchor_first_step=*/false);
    if (path.ok()) return Qualifier::MakePath(std::move(path).value());
    pos_ = save;
    if (Match("(")) {
      TREEQ_ASSIGN_OR_RETURN(std::unique_ptr<Qualifier> inner, ParseQualOr());
      if (!Match(")")) return Error("expected ')'");
      return inner;
    }
    return path.status();
  }

  std::string_view input_;
  ParserOptions options_;
  size_t pos_ = 0;
  int depth_ = 0;
};

}  // namespace

Result<std::unique_ptr<PathExpr>> ParseXPath(std::string_view input) {
  return XPathParser(input, ParserOptions{}).Parse();
}

Result<std::unique_ptr<PathExpr>> ParseXPath(std::string_view input,
                                             const ParserOptions& options) {
  return XPathParser(input, options).Parse();
}

}  // namespace xpath
}  // namespace treeq
