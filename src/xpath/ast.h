#ifndef TREEQ_XPATH_AST_H_
#define TREEQ_XPATH_AST_H_

#include <memory>
#include <string>
#include <vector>

#include "tree/axes.h"

/// \file ast.h
/// Core XPath (Section 3), the navigational fragment of XPath:
///
///   p    ::= step | p/p | p ∪ p
///   step ::= axis | step[q]
///   axis ::= arel | arel^-1 | Self
///   q    ::= p | lab() = L | q ∧ q | q ∨ q | ¬q
///
/// A unary Core XPath query is [[p]]_NodeSet(root).

namespace treeq {
namespace xpath {

struct Qualifier;

/// A path expression.
struct PathExpr {
  enum class Kind {
    kStep,   // axis with qualifiers
    kSeq,    // left / right
    kUnion,  // left ∪ right
  };

  Kind kind = Kind::kStep;

  // kStep:
  Axis axis = Axis::kSelf;
  std::vector<std::unique_ptr<Qualifier>> qualifiers;

  // kSeq / kUnion:
  std::unique_ptr<PathExpr> left;
  std::unique_ptr<PathExpr> right;

  static std::unique_ptr<PathExpr> MakeStep(Axis axis);
  static std::unique_ptr<PathExpr> MakeSeq(std::unique_ptr<PathExpr> l,
                                           std::unique_ptr<PathExpr> r);
  static std::unique_ptr<PathExpr> MakeUnion(std::unique_ptr<PathExpr> l,
                                             std::unique_ptr<PathExpr> r);

  std::unique_ptr<PathExpr> Clone() const;
};

/// A qualifier (Boolean-valued expression over a context node).
struct Qualifier {
  enum class Kind {
    kPath,   // existential path test
    kLabel,  // lab() = L
    kAnd,
    kOr,
    kNot,  // uses `left` only
  };

  Kind kind = Kind::kLabel;
  std::unique_ptr<PathExpr> path;  // kPath
  std::string label;               // kLabel
  std::unique_ptr<Qualifier> left;
  std::unique_ptr<Qualifier> right;

  static std::unique_ptr<Qualifier> MakePath(std::unique_ptr<PathExpr> p);
  static std::unique_ptr<Qualifier> MakeLabel(std::string label);
  static std::unique_ptr<Qualifier> MakeAnd(std::unique_ptr<Qualifier> l,
                                            std::unique_ptr<Qualifier> r);
  static std::unique_ptr<Qualifier> MakeOr(std::unique_ptr<Qualifier> l,
                                           std::unique_ptr<Qualifier> r);
  static std::unique_ptr<Qualifier> MakeNot(std::unique_ptr<Qualifier> q);

  std::unique_ptr<Qualifier> Clone() const;
};

/// Number of AST nodes (the |Q| in the complexity statements).
int PathSize(const PathExpr& p);
int QualifierSize(const Qualifier& q);

/// True iff the expression uses neither kNot (positive Core XPath) ...
bool IsPositive(const PathExpr& p);
/// ... nor kOr/kUnion on top of that (conjunctive Core XPath).
bool IsConjunctive(const PathExpr& p);

/// True iff every axis in the expression is a forward axis (Section 5).
bool IsForward(const PathExpr& p);

/// Concrete-syntax rendering, reparseable by ParseXPath.
std::string ToString(const PathExpr& p);
std::string ToString(const Qualifier& q);

}  // namespace xpath
}  // namespace treeq

#endif  // TREEQ_XPATH_AST_H_
