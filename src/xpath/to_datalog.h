#ifndef TREEQ_XPATH_TO_DATALOG_H_
#define TREEQ_XPATH_TO_DATALOG_H_

#include "datalog/ast.h"
#include "util/status.h"
#include "xpath/ast.h"

/// \file to_datalog.h
/// Linear-time translation of positive Core XPath into monadic datalog
/// (Section 3 / [29]): each subexpression of the query becomes one
/// intensional predicate, axes stay as (derived) binary atoms, and the TMNF
/// transformation of datalog/tmnf.h then compiles the result to Def. 3.4
/// form. Composing the two stages realizes "each Core XPath query can be
/// translated into an equivalent TMNF query in linear time".
///
/// XPathToDatalog covers the positive fragment and returns Unsupported for
/// not(...); XPathToStratifiedDatalog covers FULL Core XPath by emitting
/// negated intensional atoms, evaluated with datalog/stratified.h — the
/// engine-style realization of "this remains true in the presence of
/// negation" (Section 3; [29] does it with complementation gadgets inside
/// a single TMNF program instead).

namespace treeq {
namespace xpath {

/// Translates the unary query [[path]](root) into a monadic datalog program
/// whose query predicate selects the same node set. Requires IsPositive.
Result<datalog::Program> XPathToDatalog(const PathExpr& path);

/// Full Core XPath (including not/or/union): the output program may carry
/// negated intensional atoms and must be run through
/// datalog::EvaluateStratified. Negation-free inputs yield the same program
/// XPathToDatalog produces.
Result<datalog::Program> XPathToStratifiedDatalog(const PathExpr& path);

}  // namespace xpath
}  // namespace treeq

#endif  // TREEQ_XPATH_TO_DATALOG_H_
