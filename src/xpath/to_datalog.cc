#include "xpath/to_datalog.h"

#include <string>
#include <utility>
#include <vector>

namespace treeq {
namespace xpath {

namespace {

using datalog::Atom;
using datalog::Program;
using datalog::Rule;

/// Builds the program rule by rule; every Fresh() name denotes one
/// subexpression of the query, so the output has O(|Q|) rules.
class Translator {
 public:
  Translator(Program* out, bool allow_negation)
      : out_(out), allow_negation_(allow_negation) {}

  std::string Fresh() { return "X" + std::to_string(counter_++); }

  /// result(x) iff x is selected by `path` from a context node satisfying
  /// `context_pred`. Returns the result predicate name.
  Result<std::string> Forward(const PathExpr& path,
                              const std::string& context_pred) {
    switch (path.kind) {
      case PathExpr::Kind::kStep: {
        // result(x) <- context(y), axis(y, x), B_q1(x), ..., B_qk(x).
        std::vector<std::string> qual_preds;
        for (const auto& q : path.qualifiers) {
          TREEQ_ASSIGN_OR_RETURN(std::string b, QualifierPred(*q));
          qual_preds.push_back(b);
        }
        std::string result = Fresh();
        Rule rule;
        rule.head_pred = result;
        rule.var_names = {"y", "x"};
        rule.head_var = 1;
        rule.body.push_back(Atom::MakeIntensional(context_pred, 0));
        rule.body.push_back(Atom::MakeAxis(path.axis, 0, 1));
        for (const std::string& b : qual_preds) {
          rule.body.push_back(Atom::MakeIntensional(b, 1));
        }
        out_->rules().push_back(std::move(rule));
        return result;
      }
      case PathExpr::Kind::kSeq: {
        TREEQ_ASSIGN_OR_RETURN(std::string mid,
                               Forward(*path.left, context_pred));
        return Forward(*path.right, mid);
      }
      case PathExpr::Kind::kUnion: {
        TREEQ_ASSIGN_OR_RETURN(std::string l, Forward(*path.left, context_pred));
        TREEQ_ASSIGN_OR_RETURN(std::string r,
                               Forward(*path.right, context_pred));
        std::string result = Fresh();
        EmitCopy(result, l);
        EmitCopy(result, r);
        return result;
      }
    }
    return Status::Internal("unreachable");
  }

  /// b(x) iff qualifier `q` holds at x.
  Result<std::string> QualifierPred(const Qualifier& q) {
    switch (q.kind) {
      case Qualifier::Kind::kLabel: {
        std::string b = Fresh();
        Rule rule;
        rule.head_pred = b;
        rule.var_names = {"x"};
        rule.head_var = 0;
        rule.body.push_back(Atom::MakeLabel(q.label, 0));
        out_->rules().push_back(std::move(rule));
        return b;
      }
      case Qualifier::Kind::kAnd: {
        TREEQ_ASSIGN_OR_RETURN(std::string l, QualifierPred(*q.left));
        TREEQ_ASSIGN_OR_RETURN(std::string r, QualifierPred(*q.right));
        std::string b = Fresh();
        Rule rule;
        rule.head_pred = b;
        rule.var_names = {"x"};
        rule.head_var = 0;
        rule.body.push_back(Atom::MakeIntensional(l, 0));
        rule.body.push_back(Atom::MakeIntensional(r, 0));
        out_->rules().push_back(std::move(rule));
        return b;
      }
      case Qualifier::Kind::kOr: {
        TREEQ_ASSIGN_OR_RETURN(std::string l, QualifierPred(*q.left));
        TREEQ_ASSIGN_OR_RETURN(std::string r, QualifierPred(*q.right));
        std::string b = Fresh();
        EmitCopy(b, l);
        EmitCopy(b, r);
        return b;
      }
      case Qualifier::Kind::kPath:
        return Backward(*q.path, /*target_pred=*/"");
      case Qualifier::Kind::kNot: {
        if (!allow_negation_) {
          return Status::Unsupported(
              "XPathToDatalog covers positive Core XPath only (use "
              "XPathToStratifiedDatalog + EvaluateStratified for negation)");
        }
        TREEQ_ASSIGN_OR_RETURN(std::string inner, QualifierPred(*q.left));
        // b(x) <- Dom(x), not inner(x): negation-as-failure, resolved by
        // stratification (inner sits in a strictly lower stratum).
        std::string b = Fresh();
        Rule rule;
        rule.head_pred = b;
        rule.var_names = {"x"};
        rule.head_var = 0;
        rule.body.push_back(
            Atom::MakeUnaryBuiltin(datalog::UnaryBuiltin::kDom, 0));
        Atom negated = Atom::MakeIntensional(inner, 0);
        negated.negated = true;
        rule.body.push_back(std::move(negated));
        out_->rules().push_back(std::move(rule));
        return b;
      }
    }
    return Status::Internal("unreachable");
  }

 private:
  void EmitCopy(const std::string& head, const std::string& body) {
    Rule rule;
    rule.head_pred = head;
    rule.var_names = {"x"};
    rule.head_var = 0;
    rule.body.push_back(Atom::MakeIntensional(body, 0));
    out_->rules().push_back(std::move(rule));
  }

  /// b(x) iff `path` from x reaches some node satisfying `target_pred`
  /// (empty target = any node).
  Result<std::string> Backward(const PathExpr& path,
                               const std::string& target_pred) {
    switch (path.kind) {
      case PathExpr::Kind::kStep: {
        std::vector<std::string> qual_preds;
        for (const auto& q : path.qualifiers) {
          TREEQ_ASSIGN_OR_RETURN(std::string b, QualifierPred(*q));
          qual_preds.push_back(b);
        }
        std::string result = Fresh();
        Rule rule;
        rule.head_pred = result;
        rule.var_names = {"x", "y"};
        rule.head_var = 0;
        rule.body.push_back(Atom::MakeAxis(path.axis, 0, 1));
        for (const std::string& b : qual_preds) {
          rule.body.push_back(Atom::MakeIntensional(b, 1));
        }
        if (!target_pred.empty()) {
          rule.body.push_back(Atom::MakeIntensional(target_pred, 1));
        }
        out_->rules().push_back(std::move(rule));
        return result;
      }
      case PathExpr::Kind::kSeq: {
        TREEQ_ASSIGN_OR_RETURN(std::string tail,
                               Backward(*path.right, target_pred));
        return Backward(*path.left, tail);
      }
      case PathExpr::Kind::kUnion: {
        TREEQ_ASSIGN_OR_RETURN(std::string l, Backward(*path.left, target_pred));
        TREEQ_ASSIGN_OR_RETURN(std::string r,
                               Backward(*path.right, target_pred));
        std::string result = Fresh();
        EmitCopy(result, l);
        EmitCopy(result, r);
        return result;
      }
    }
    return Status::Internal("unreachable");
  }

  Program* out_;
  bool allow_negation_;
  int counter_ = 0;
};

Result<datalog::Program> Translate(const PathExpr& path,
                                   bool allow_negation) {
  Program program;
  Translator translator(&program, allow_negation);
  // Context predicate: the root.
  std::string root = translator.Fresh();
  {
    Rule rule;
    rule.head_pred = root;
    rule.var_names = {"x"};
    rule.head_var = 0;
    rule.body.push_back(
        Atom::MakeUnaryBuiltin(datalog::UnaryBuiltin::kRoot, 0));
    program.rules().push_back(std::move(rule));
  }
  TREEQ_ASSIGN_OR_RETURN(std::string result, translator.Forward(path, root));
  program.set_query_predicate(result);
  TREEQ_RETURN_IF_ERROR(program.Validate(allow_negation));
  return program;
}

}  // namespace

Result<datalog::Program> XPathToDatalog(const PathExpr& path) {
  return Translate(path, /*allow_negation=*/false);
}

Result<datalog::Program> XPathToStratifiedDatalog(const PathExpr& path) {
  return Translate(path, /*allow_negation=*/true);
}

}  // namespace xpath
}  // namespace treeq
