#ifndef TREEQ_XPATH_EVALUATOR_H_
#define TREEQ_XPATH_EVALUATOR_H_

#include "tree/axes.h"
#include "tree/document.h"
#include "tree/orders.h"
#include "tree/tree.h"
#include "util/exec_context.h"
#include "util/status.h"
#include "util/task_runner.h"
#include "xpath/ast.h"

/// \file evaluator.h
/// Set-at-a-time Core XPath evaluation in time O(|D| * |Q|) (data *and*
/// combined complexity) in the style of Gottlob-Koch-Pichler [32, 33]:
/// every subexpression of the query is evaluated exactly once, on whole
/// node sets, using the O(|D|) axis set operators of tree/axes.h.
///
///  - a path applied forward maps a context set to a result set;
///  - a qualifier denotes one node set B(q) = {n : [[q]](n) = true};
///  - an existential path test is evaluated *backward*: the set of nodes
///    from which the path can reach a target set is an inverse-axis image
///    chain. Negation is set complement.

namespace treeq {
namespace xpath {

/// All nodes reachable from `context` via `path`:
/// union over n in context of [[path]]_NodeSet(n).
NodeSet EvalPath(const Tree& tree, const TreeOrders& orders,
                 const PathExpr& path, const NodeSet& context);

/// The set B(q) of nodes satisfying the qualifier.
NodeSet EvalQualifier(const Tree& tree, const TreeOrders& orders,
                      const Qualifier& q);

/// {n : [[path]](n) intersects `target`} — the backward image used for
/// qualifier paths.
NodeSet EvalPathExists(const Tree& tree, const TreeOrders& orders,
                       const PathExpr& path, const NodeSet& target);

/// The unary Core XPath query [[path]](root) (Section 3).
NodeSet EvalQueryFromRoot(const Tree& tree, const TreeOrders& orders,
                          const PathExpr& path);

/// Document-taking overloads (tree/document.h). These route the label-filter
/// step through the document's cached LabelIndex (tree/label_index.h), so a
/// qualifier like [a] is a word-wise bitmap copy instead of an arena scan.
NodeSet EvalPath(const Document& doc, const PathExpr& path,
                 const NodeSet& context);
NodeSet EvalQualifier(const Document& doc, const Qualifier& q);
NodeSet EvalPathExists(const Document& doc, const PathExpr& path,
                       const NodeSet& target);
NodeSet EvalQueryFromRoot(const Document& doc, const PathExpr& path);

/// Bounded variants (util/exec_context.h): identical semantics, but the
/// evaluation charges `exec` one unit per subexpression operation plus one
/// per context/restriction node touched, and aborts with the context's
/// DeadlineExceeded / ResourceExhausted / Cancelled status as soon as a
/// limit trips. The charge schedule is deterministic for a fixed
/// (document, query) pair, so visit budgets are exactly reproducible.
Result<NodeSet> EvalPath(const Document& doc, const PathExpr& path,
                         const NodeSet& context, const ExecContext& exec);
Result<NodeSet> EvalQueryFromRoot(const Document& doc, const PathExpr& path,
                                  const ExecContext& exec);
Result<NodeSet> EvalQueryFromRoot(const Tree& tree, const TreeOrders& orders,
                                  const PathExpr& path,
                                  const ExecContext& exec);

/// Memoized variant: every axis-image step — forward steps and the inverse
/// steps of qualifier paths alike — first consults `memo` (tree/axes.h; in
/// practice a cache::EvalCache::Memo bound to this document's epoch) and
/// stores its freshly computed image back on a miss. The result is
/// bit-identical to the unmemoized evaluation; only the charge schedule
/// differs on hits, which charge the O(words) lookup (1 + |from| words)
/// instead of the saved O(|from|) kernel work. A null memo degenerates to
/// EvalQueryFromRoot(doc, path, exec) exactly.
Result<NodeSet> EvalQueryFromRoot(const Document& doc, const PathExpr& path,
                                  const ExecContext& exec,
                                  AxisImageMemo* memo);

/// Partition-parallel variant: identical result (bit-identical NodeSet) and
/// abort semantics, but each axis-image step whose context set is at least
/// `options.min_context` nodes is forked across `options.parallelism`
/// subtree partitions of the document (tree/par_axes.h) on
/// `options.runner`. Steps below the threshold — and everything else in the
/// query — keep the exact serial charge schedule; forked steps charge each
/// child 1 + |context_i|. `stats`, when set, accumulates fork attribution
/// across all forked steps of the query.
Result<NodeSet> EvalQueryFromRootParallel(const Document& doc,
                                          const PathExpr& path,
                                          const ExecContext& exec,
                                          const par::ParOptions& options,
                                          par::ParStats* stats = nullptr);

}  // namespace xpath
}  // namespace treeq

#endif  // TREEQ_XPATH_EVALUATOR_H_
