#include "xpath/naive_evaluator.h"

#include "obs/obs.h"

namespace treeq {
namespace xpath {

namespace {

class NaiveEvaluator {
 public:
  NaiveEvaluator(const Tree& tree, const TreeOrders& orders, uint64_t budget,
                 NaiveStats* stats, const ExecContext& exec)
      : tree_(tree), orders_(orders), budget_(budget), stats_(stats),
        exec_(exec) {}

  Result<NodeSet> EvalPath(const PathExpr& path, NodeId context) {
    TREEQ_RETURN_IF_ERROR(Charge());
    const int n = tree_.num_nodes();
    switch (path.kind) {
      case PathExpr::Kind::kStep: {
        // (P1) + (P2): enumerate the axis image of the single context node,
        // re-evaluating every qualifier per candidate.
        NodeSet out(n);
        for (NodeId m = 0; m < n; ++m) {
          if (!AxisHolds(tree_, orders_, path.axis, context, m)) continue;
          bool all = true;
          for (const auto& q : path.qualifiers) {
            TREEQ_ASSIGN_OR_RETURN(bool holds, EvalQualifier(*q, m));
            if (!holds) {
              all = false;
              break;
            }
          }
          if (all) out.Insert(m);
        }
        return out;
      }
      case PathExpr::Kind::kSeq: {
        // (P3): recurse into the tail once per intermediate node.
        TREEQ_ASSIGN_OR_RETURN(NodeSet mid, EvalPath(*path.left, context));
        NodeSet out(n);
        for (NodeId w : mid.ToVector()) {
          TREEQ_ASSIGN_OR_RETURN(NodeSet sub, EvalPath(*path.right, w));
          out.UnionWith(sub);
        }
        return out;
      }
      case PathExpr::Kind::kUnion: {
        // (P4)
        TREEQ_ASSIGN_OR_RETURN(NodeSet out, EvalPath(*path.left, context));
        TREEQ_ASSIGN_OR_RETURN(NodeSet rhs, EvalPath(*path.right, context));
        out.UnionWith(rhs);
        return out;
      }
    }
    TREEQ_CHECK(false);
    return NodeSet(n);
  }

  Result<bool> EvalQualifier(const Qualifier& q, NodeId context) {
    TREEQ_RETURN_IF_ERROR(Charge());
    switch (q.kind) {
      case Qualifier::Kind::kPath: {
        // (Q2)
        TREEQ_ASSIGN_OR_RETURN(NodeSet set, EvalPath(*q.path, context));
        return !set.empty();
      }
      case Qualifier::Kind::kLabel:  // (Q1)
        return tree_.HasLabel(context, q.label);
      case Qualifier::Kind::kAnd: {  // (Q3)
        TREEQ_ASSIGN_OR_RETURN(bool l, EvalQualifier(*q.left, context));
        if (!l) return false;
        return EvalQualifier(*q.right, context);
      }
      case Qualifier::Kind::kOr: {  // (Q4)
        TREEQ_ASSIGN_OR_RETURN(bool l, EvalQualifier(*q.left, context));
        if (l) return true;
        return EvalQualifier(*q.right, context);
      }
      case Qualifier::Kind::kNot: {  // (Q5)
        TREEQ_ASSIGN_OR_RETURN(bool l, EvalQualifier(*q.left, context));
        return !l;
      }
    }
    TREEQ_CHECK(false);
    return false;
  }

 private:
  Status Charge() {
    TREEQ_OBS_INC("xpath.naive.rule_applications");
    if (stats_ != nullptr) ++stats_->rule_applications;
    TREEQ_RETURN_IF_ERROR(exec_.Charge(1));
    if (budget_ == 0) {
      TREEQ_OBS_INC("xpath.naive.budget_exhaustions");
      return Status::ResourceExhausted(
          "naive XPath evaluation budget exceeded");
    }
    --budget_;
    return Status::OK();
  }

  const Tree& tree_;
  const TreeOrders& orders_;
  uint64_t budget_;
  NaiveStats* stats_;
  const ExecContext& exec_;
};

}  // namespace

Result<NodeSet> NaiveEvalPath(const Tree& tree, const TreeOrders& orders,
                              const PathExpr& path, NodeId context,
                              uint64_t budget, NaiveStats* stats,
                              const ExecContext& exec) {
  NaiveEvaluator eval(tree, orders, budget, stats, exec);
  return eval.EvalPath(path, context);
}

Result<bool> NaiveEvalQualifier(const Tree& tree, const TreeOrders& orders,
                                const Qualifier& q, NodeId context,
                                uint64_t budget, NaiveStats* stats,
                                const ExecContext& exec) {
  NaiveEvaluator eval(tree, orders, budget, stats, exec);
  return eval.EvalQualifier(q, context);
}

}  // namespace xpath
}  // namespace treeq
