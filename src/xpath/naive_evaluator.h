#ifndef TREEQ_XPATH_NAIVE_EVALUATOR_H_
#define TREEQ_XPATH_NAIVE_EVALUATOR_H_

#include <cstdint>

#include "tree/axes.h"
#include "tree/orders.h"
#include "tree/tree.h"
#include "util/exec_context.h"
#include "util/status.h"
#include "xpath/ast.h"

/// \file naive_evaluator.h
/// The textbook per-context-node recursive Core XPath interpreter: a direct
/// transliteration of the semantic equations (P1)-(P4), (Q1)-(Q5) of
/// Section 3, re-evaluating each subexpression for every context node it is
/// reached from. This is how early XPath engines worked and why their
/// combined complexity is exponential ([32]); it is the baseline against
/// which the set-at-a-time evaluator's O(|D|*|Q|) bound is demonstrated
/// (bench_xpath_combined).

namespace treeq {
namespace xpath {

/// Counts semantic-rule applications so benches can report work performed.
struct NaiveStats {
  uint64_t rule_applications = 0;
};

/// [[path]](context) as a node set, or ResourceExhausted if `budget` rule
/// applications were exceeded (the evaluator is exponential; the budget
/// keeps tests and benches bounded). The ExecContext (util/exec_context.h)
/// is charged one unit per rule application, so deadlines and external
/// budgets abort the recursion cooperatively.
Result<NodeSet> NaiveEvalPath(const Tree& tree, const TreeOrders& orders,
                              const PathExpr& path, NodeId context,
                              uint64_t budget = UINT64_MAX,
                              NaiveStats* stats = nullptr,
                              const ExecContext& exec =
                                  ExecContext::Unbounded());

/// [[q]](context) as a Boolean, with the same budget contract.
Result<bool> NaiveEvalQualifier(const Tree& tree, const TreeOrders& orders,
                                const Qualifier& q, NodeId context,
                                uint64_t budget = UINT64_MAX,
                                NaiveStats* stats = nullptr,
                                const ExecContext& exec =
                                    ExecContext::Unbounded());

}  // namespace xpath
}  // namespace treeq

#endif  // TREEQ_XPATH_NAIVE_EVALUATOR_H_
