#ifndef TREEQ_PLAN_LOWER_H_
#define TREEQ_PLAN_LOWER_H_

#include "cq/ast.h"
#include "datalog/ast.h"
#include "fo/ast.h"
#include "plan/ir.h"
#include "xpath/ast.h"

/// \file lower.h
/// Per-language lowering into the logical plan IR (plan/ir.h). Each
/// lowering either produces a structural plan (a union of query graphs) or
/// an opaque plan carrying a language-tagged canonical rendering — never
/// an error: a query that parsed and validated always lowers.
///
/// Structural coverage:
///   - XPath: positive queries. Unions and qualifier disjunctions
///     distribute into branches (capped at kMaxBranches); kNot falls back
///     to opaque. Absolute paths anchor variable 0 at the root.
///   - CQ: everything except duplicate head variables.
///   - Datalog: non-recursive programs over label/axis/intensional atoms;
///     intensional predicates are inlined (unions of rule bodies
///     distribute, capped). Builtins, negation, and recursion are opaque.
///   - FO: positive existential sentences (kAnd/kOr/kExists over
///     label/axis/equality atoms); kOr distributes, x = y merges
///     variables via a Self edge. kNot/kForAll are opaque.

namespace treeq {
namespace plan {

/// Branch blow-up cap for distributed unions/disjunctions. A query that
/// would exceed it lowers to an opaque plan instead (still hashable,
/// native engines only).
inline constexpr size_t kMaxBranches = 32;

LogicalPlan LowerXPath(const xpath::PathExpr& path);
LogicalPlan LowerCq(const cq::ConjunctiveQuery& query);
LogicalPlan LowerDatalog(const datalog::Program& program);
LogicalPlan LowerFo(const fo::Formula& sentence);

}  // namespace plan
}  // namespace treeq

#endif  // TREEQ_PLAN_LOWER_H_
