#ifndef TREEQ_PLAN_IR_H_
#define TREEQ_PLAN_IR_H_

#include <cstdint>
#include <string>
#include <vector>

#include "cq/ast.h"
#include "cq/twig_join.h"
#include "fo/ast.h"
#include "tree/axes.h"

/// \file ir.h
/// The unified logical plan IR. All four front ends (XPath, CQ, monadic
/// datalog, FO) lower into this representation (plan/lower.h), the
/// canonicalizer (plan/canonicalize.h) normalizes it to a stable 128-bit
/// hash, and the cost-based router (plan/route.h) scores physical engines
/// against it.
///
/// The IR is the paper's shared algebra made concrete: a query is a union
/// of *query graphs* — variables constrained by label predicates, related
/// by the axis relations of tree/axes.h, with an ordered subset marked as
/// output (Section 4's conjunctive queries over trees, extended with an
/// optional root anchor so absolute XPath paths keep their semantics).
/// Queries whose source constructs fall outside this fragment (negation,
/// universal quantification, recursive datalog, ...) carry an *opaque*
/// canonical rendering instead: they still get a stable hash (so caches
/// dedupe by normalized text) but only their native engines are eligible.

namespace treeq {
namespace plan {

/// One query variable: conjunction of label predicates plus an optional
/// output position. output_ord == k means this variable is the k-th column
/// of the result tuple (k == 0 and arity 1 means "the" selected node).
struct IrVar {
  std::vector<std::string> labels;
  int output_ord = -1;

  bool is_output() const { return output_ord >= 0; }
};

/// One axis atom: axis(from, to) in the paper's orientation — e.g.
/// Child(u, v) says v is a child of u.
struct IrEdge {
  int from = 0;
  int to = 0;
  Axis axis = Axis::kChild;
};

/// A conjunctive query graph. When `anchored`, variable 0 denotes the
/// document root (absolute XPath paths); non-anchored graphs are plain
/// conjunctive queries over trees.
struct QueryGraph {
  bool anchored = false;
  std::vector<IrVar> vars;
  std::vector<IrEdge> edges;

  int Degree(int var) const;
  bool IsConnected() const;

  /// Compact one-line rendering: "v0{product} -descendant-> v1{name}=>0".
  std::string Render() const;
};

/// The stable canonical identity of a logical plan: a 128-bit FNV-1a hash
/// of the canonical encoding. Semantically identical queries — across
/// dialects, whitespace, and variable renaming — share one hash.
struct CanonicalHash {
  uint64_t hi = 0;
  uint64_t lo = 0;

  bool operator==(const CanonicalHash&) const = default;
  /// 32 lowercase hex chars.
  std::string ToHex() const;
};

/// A lowered query: a union of query graphs with a fixed output arity
/// (0 = Boolean, 1 = node set, k >= 2 = tuple set), or — when the source
/// query falls outside the structural fragment — an opaque canonical
/// rendering tagged with the source language.
struct LogicalPlan {
  int arity = 1;
  std::vector<QueryGraph> branches;
  /// Set iff `branches` is empty: "<language>:<canonical rendering>".
  std::string opaque;

  bool structural() const { return !branches.empty(); }

  /// Multi-line-free rendering for Explain(): arity, branch count, and one
  /// Render() per branch, separated by " | ".
  std::string Render() const;
};

/// Converts a non-anchored graph to the equivalent conjunctive query
/// (variables named v0..vn in index order, head = output variables in
/// output_ord order). Fails (returns false) for anchored graphs — the
/// root constraint has no CQ atom.
bool GraphToCq(const QueryGraph& graph, cq::ConjunctiveQuery* out);

/// Converts a conjunctive query to a (non-anchored) graph. Duplicate head
/// variables are not representable (output_ord is one-per-var); returns
/// false for those.
bool CqToGraph(const cq::ConjunctiveQuery& query, QueryGraph* out);

/// Converts a non-anchored graph to a twig pattern plus the pattern-node
/// positions of the output variables (in output_ord order). Requires:
/// every variable carries exactly one label, every edge is Child or
/// Descendant (forward), and the edges form a single out-tree. Returns
/// false otherwise.
bool GraphToTwig(const QueryGraph& graph, cq::TwigPattern* out,
                 std::vector<int>* out_cols);

/// Converts a Boolean non-anchored graph to the equivalent positive
/// existential FO sentence. Requires arity 0 (no output variables).
std::unique_ptr<fo::Formula> GraphToFo(const QueryGraph& graph);

}  // namespace plan
}  // namespace treeq

#endif  // TREEQ_PLAN_IR_H_
