#include "plan/ir.h"

#include <algorithm>
#include <cstdio>
#include <map>
#include <utility>

namespace treeq {
namespace plan {

int QueryGraph::Degree(int var) const {
  int d = 0;
  for (const IrEdge& e : edges) {
    if (e.from == var) ++d;
    if (e.to == var) ++d;
  }
  return d;
}

bool QueryGraph::IsConnected() const {
  if (vars.empty()) return true;
  std::vector<int> component(vars.size(), -1);
  std::vector<int> stack = {0};
  component[0] = 0;
  while (!stack.empty()) {
    int v = stack.back();
    stack.pop_back();
    for (const IrEdge& e : edges) {
      int other = -1;
      if (e.from == v) other = e.to;
      if (e.to == v) other = e.from;
      if (other >= 0 && component[other] < 0) {
        component[other] = 0;
        stack.push_back(other);
      }
    }
  }
  for (int c : component) {
    if (c < 0) return false;
  }
  return true;
}

std::string QueryGraph::Render() const {
  std::string out;
  if (anchored) out += "@root ";
  for (size_t i = 0; i < vars.size(); ++i) {
    if (i > 0) out += " ";
    out += "v" + std::to_string(i) + "{";
    for (size_t l = 0; l < vars[i].labels.size(); ++l) {
      if (l > 0) out += ",";
      out += vars[i].labels[l];
    }
    out += "}";
    if (vars[i].is_output()) {
      out += "=>" + std::to_string(vars[i].output_ord);
    }
  }
  for (const IrEdge& e : edges) {
    out += " v" + std::to_string(e.from) + " -" + AxisName(e.axis) + "-> v" +
           std::to_string(e.to);
  }
  return out;
}

std::string CanonicalHash::ToHex() const {
  char buf[33];
  std::snprintf(buf, sizeof(buf), "%016llx%016llx",
                static_cast<unsigned long long>(hi),
                static_cast<unsigned long long>(lo));
  return std::string(buf);
}

std::string LogicalPlan::Render() const {
  std::string out = "arity=" + std::to_string(arity);
  if (!structural()) {
    out += " opaque(" + opaque + ")";
    return out;
  }
  out += " branches=" + std::to_string(branches.size());
  for (size_t b = 0; b < branches.size(); ++b) {
    out += " | [" + std::to_string(b) + "] " + branches[b].Render();
  }
  return out;
}

bool GraphToCq(const QueryGraph& graph, cq::ConjunctiveQuery* out) {
  if (graph.anchored) return false;
  cq::ConjunctiveQuery q;
  for (size_t i = 0; i < graph.vars.size(); ++i) {
    q.AddVar("v" + std::to_string(i));
  }
  for (size_t i = 0; i < graph.vars.size(); ++i) {
    for (const std::string& label : graph.vars[i].labels) {
      q.AddLabelAtom(label, static_cast<int>(i));
    }
  }
  for (const IrEdge& e : graph.edges) {
    q.AddAxisAtom(e.axis, e.from, e.to);
  }
  // Head = output variables in output_ord order.
  std::map<int, int> head;  // ord -> var
  for (size_t i = 0; i < graph.vars.size(); ++i) {
    if (graph.vars[i].is_output()) {
      head[graph.vars[i].output_ord] = static_cast<int>(i);
    }
  }
  for (const auto& [ord, var] : head) q.AddHeadVar(var);
  *out = std::move(q);
  return true;
}

bool CqToGraph(const cq::ConjunctiveQuery& query, QueryGraph* out) {
  QueryGraph g;
  g.vars.resize(static_cast<size_t>(query.num_vars()));
  for (const cq::LabelAtom& atom : query.label_atoms()) {
    g.vars[static_cast<size_t>(atom.var)].labels.push_back(atom.label);
  }
  for (const cq::AxisAtom& atom : query.axis_atoms()) {
    g.edges.push_back(IrEdge{atom.var0, atom.var1, atom.axis});
  }
  for (size_t ord = 0; ord < query.head_vars().size(); ++ord) {
    IrVar& var = g.vars[static_cast<size_t>(query.head_vars()[ord])];
    if (var.is_output()) return false;  // duplicate head variable
    var.output_ord = static_cast<int>(ord);
  }
  *out = std::move(g);
  return true;
}

bool GraphToTwig(const QueryGraph& graph, cq::TwigPattern* out,
                 std::vector<int>* out_cols) {
  if (graph.anchored || graph.vars.empty()) return false;
  const size_t n = graph.vars.size();
  std::vector<int> parent(n, -1);
  std::vector<Axis> edge_axis(n, Axis::kDescendant);
  for (const IrEdge& e : graph.edges) {
    if (e.axis != Axis::kChild && e.axis != Axis::kDescendant) return false;
    if (parent[static_cast<size_t>(e.to)] != -1) return false;  // two parents
    parent[static_cast<size_t>(e.to)] = e.from;
    edge_axis[static_cast<size_t>(e.to)] = e.axis;
  }
  int root = -1;
  for (size_t i = 0; i < n; ++i) {
    if (graph.vars[i].labels.size() != 1) return false;
    if (parent[i] == -1) {
      if (root != -1) return false;  // forest, not a tree
      root = static_cast<int>(i);
    }
  }
  if (root == -1) return false;  // cyclic
  // BFS from the root assigns pattern positions (parents precede
  // children, root at 0, per TwigPattern's contract) and proves
  // reachability (an unreached var means a parent cycle off the tree).
  std::vector<int> order;  // graph var index, in pattern position order
  std::vector<int> position(n, -1);
  order.push_back(root);
  position[static_cast<size_t>(root)] = 0;
  for (size_t head = 0; head < order.size(); ++head) {
    for (size_t i = 0; i < n; ++i) {
      if (parent[i] == order[head] && position[i] == -1) {
        position[i] = static_cast<int>(order.size());
        order.push_back(static_cast<int>(i));
      }
    }
  }
  if (order.size() != n) return false;

  cq::TwigPattern pattern;
  pattern.nodes.resize(n);
  for (size_t pos = 0; pos < n; ++pos) {
    const size_t var = static_cast<size_t>(order[pos]);
    cq::TwigPatternNode& node = pattern.nodes[pos];
    node.label = graph.vars[var].labels[0];
    node.parent =
        parent[var] == -1 ? -1 : position[static_cast<size_t>(parent[var])];
    node.edge = edge_axis[var];
  }
  if (!pattern.Validate().ok()) return false;

  std::map<int, int> cols;  // output_ord -> pattern position
  for (size_t i = 0; i < n; ++i) {
    if (graph.vars[i].is_output()) {
      cols[graph.vars[i].output_ord] = position[i];
    }
  }
  out_cols->clear();
  for (const auto& [ord, pos] : cols) out_cols->push_back(pos);
  *out = std::move(pattern);
  return true;
}

std::unique_ptr<fo::Formula> GraphToFo(const QueryGraph& graph) {
  if (graph.anchored || graph.vars.empty()) return nullptr;
  for (const IrVar& var : graph.vars) {
    if (var.is_output()) return nullptr;
  }
  auto name = [](int v) { return "v" + std::to_string(v); };
  std::unique_ptr<fo::Formula> body;
  auto conjoin = [&body](std::unique_ptr<fo::Formula> atom) {
    body = body == nullptr
               ? std::move(atom)
               : fo::Formula::And(std::move(body), std::move(atom));
  };
  for (size_t i = 0; i < graph.vars.size(); ++i) {
    for (const std::string& label : graph.vars[i].labels) {
      conjoin(fo::Formula::Label(label, name(static_cast<int>(i))));
    }
  }
  for (const IrEdge& e : graph.edges) {
    conjoin(fo::Formula::AxisAtom(e.axis, name(e.from), name(e.to)));
  }
  if (body == nullptr) {
    // "exists v0 . true" has no rendering; Lab-free single-var graphs say
    // "the domain is nonempty", which Self(v0, v0) expresses.
    body = fo::Formula::AxisAtom(Axis::kSelf, name(0), name(0));
  }
  // Close existentially, innermost variable last.
  for (size_t i = graph.vars.size(); i-- > 0;) {
    body = fo::Formula::Exists(name(static_cast<int>(i)), std::move(body));
  }
  return body;
}

}  // namespace plan
}  // namespace treeq
