#ifndef TREEQ_PLAN_COST_H_
#define TREEQ_PLAN_COST_H_

#include <cstdint>
#include <optional>
#include <string_view>

#include "plan/ir.h"
#include "query/parse.h"
#include "tree/document.h"

/// \file cost.h
/// The cost model behind the engine router (plan/route.h). One scored
/// decision subsumes the previous ad-hoc gates: the Theorem 6.8 dichotomy
/// classifier, the EstimatedVisits stream-degradation gate, and the
/// parallel_min_visits gate all become terms of per-engine cost formulas
/// fed by cheap Document statistics (node count, depth, label
/// frequencies from the LabelIndex).
///
/// Costs are unitless "estimated visits" — deliberately the same scale as
/// ExecContext's visit accounting, so the set-at-a-time formula equals the
/// historical EstimatedVisits bound exactly. They only need to *rank*
/// engines; absolute accuracy is a non-goal.

namespace treeq {
namespace plan {

/// Every physical engine the router can pick. Names (EngineName) match the
/// engine labels QueryProfile and Plan::route_name() already expose.
enum class EngineKind {
  kXPathSetAtATime,   // xpath.set_at_a_time
  kXPathNaive,        // xpath.naive (always-dominated baseline)
  kXPathStream,       // xpath.stream
  kTwigStack,         // cq.twigstack
  kStructuralJoins,   // cq.structural_joins
  kYannakakis,        // cq.yannakakis
  kDichotomy,         // cq.dichotomy (x-property fast path / backtracking)
  kDatalogTmnf,       // datalog.tmnf
  kFoCorollary52,     // fo.corollary52
  kFoNaive,           // fo.naive
};

inline constexpr int kNumEngineKinds = 10;

/// Canonical engine label, e.g. "cq.twigstack".
const char* EngineName(EngineKind kind);

/// Inverse of EngineName. Also accepts the post-hoc dichotomy labels
/// "cq.x_property" and "cq.backtracking" (both map to kDichotomy).
/// std::nullopt for anything else.
std::optional<EngineKind> ParseEngineName(std::string_view name);

/// The language whose native pipeline implements `kind`.
Language EngineLanguage(EngineKind kind);

/// Cheap per-document statistics for the cost formulas. Holds a borrowed
/// Document pointer for label-frequency lookups; must not outlive it.
struct DocStats {
  uint64_t nodes = 0;
  uint64_t depth = 0;
  const Document* doc = nullptr;

  static DocStats For(const Document& doc);

  /// Occurrences of `label` in the document (0 for unknown labels).
  uint64_t LabelFrequency(std::string_view label) const;

  /// min over the var's labels of LabelFrequency, or `nodes` for an
  /// unlabeled variable — the candidate-set size a label-driven engine
  /// scans for this variable.
  uint64_t VarCandidates(const IrVar& var) const;
};

/// Estimated cost of answering `plan` with `kind`, saturating at
/// UINT64_MAX. The caller is responsible for only passing eligible
/// (engine, plan) pairs; the formula does not re-check eligibility.
uint64_t EstimateCost(EngineKind kind, const LogicalPlan& plan,
                      const DocStats& stats);

}  // namespace plan
}  // namespace treeq

#endif  // TREEQ_PLAN_COST_H_
