#include "plan/cost.h"

#include <algorithm>

namespace treeq {
namespace plan {

namespace {

uint64_t SatMul(uint64_t a, uint64_t b) {
  if (a == 0 || b == 0) return 0;
  if (a > UINT64_MAX / b) return UINT64_MAX;
  return a * b;
}

uint64_t SatAdd(uint64_t a, uint64_t b) {
  return a > UINT64_MAX - b ? UINT64_MAX : a + b;
}

/// Atom count of the plan; the size proxy |Q| the per-node formulas scale
/// with. Opaque plans fall back to a rendering-length proxy.
uint64_t PlanSize(const LogicalPlan& plan) {
  if (!plan.structural()) return plan.opaque.size() / 8 + 1;
  uint64_t size = 0;
  for (const QueryGraph& g : plan.branches) {
    size += g.vars.size() + g.edges.size();
  }
  return std::max<uint64_t>(size, 1);
}

/// Sum of per-variable candidate-set sizes across all branches, times
/// `per_item` — the shape of every label-index-driven engine's cost.
uint64_t CandidateCost(const LogicalPlan& plan, const DocStats& stats,
                       uint64_t per_item) {
  uint64_t total = 0;
  for (const QueryGraph& g : plan.branches) {
    for (const IrVar& var : g.vars) {
      total = SatAdd(total, SatMul(stats.VarCandidates(var), per_item));
    }
    // Each extra branch re-runs the engine; charge its edges too.
    total = SatAdd(total, g.edges.size());
  }
  return std::max<uint64_t>(total, 1);
}

}  // namespace

const char* EngineName(EngineKind kind) {
  switch (kind) {
    case EngineKind::kXPathSetAtATime:
      return "xpath.set_at_a_time";
    case EngineKind::kXPathNaive:
      return "xpath.naive";
    case EngineKind::kXPathStream:
      return "xpath.stream";
    case EngineKind::kTwigStack:
      return "cq.twigstack";
    case EngineKind::kStructuralJoins:
      return "cq.structural_joins";
    case EngineKind::kYannakakis:
      return "cq.yannakakis";
    case EngineKind::kDichotomy:
      return "cq.dichotomy";
    case EngineKind::kDatalogTmnf:
      return "datalog.tmnf";
    case EngineKind::kFoCorollary52:
      return "fo.corollary52";
    case EngineKind::kFoNaive:
      return "fo.naive";
  }
  return "unknown";
}

std::optional<EngineKind> ParseEngineName(std::string_view name) {
  if (name == "xpath.set_at_a_time") return EngineKind::kXPathSetAtATime;
  if (name == "xpath.naive") return EngineKind::kXPathNaive;
  if (name == "xpath.stream") return EngineKind::kXPathStream;
  if (name == "cq.twigstack") return EngineKind::kTwigStack;
  if (name == "cq.structural_joins") return EngineKind::kStructuralJoins;
  if (name == "cq.yannakakis") return EngineKind::kYannakakis;
  if (name == "cq.dichotomy" || name == "cq.x_property" ||
      name == "cq.backtracking") {
    return EngineKind::kDichotomy;
  }
  if (name == "datalog.tmnf") return EngineKind::kDatalogTmnf;
  if (name == "fo.corollary52") return EngineKind::kFoCorollary52;
  if (name == "fo.naive") return EngineKind::kFoNaive;
  return std::nullopt;
}

Language EngineLanguage(EngineKind kind) {
  switch (kind) {
    case EngineKind::kXPathSetAtATime:
    case EngineKind::kXPathNaive:
    case EngineKind::kXPathStream:
      return Language::kXPath;
    case EngineKind::kTwigStack:
    case EngineKind::kStructuralJoins:
    case EngineKind::kYannakakis:
    case EngineKind::kDichotomy:
      return Language::kCq;
    case EngineKind::kDatalogTmnf:
      return Language::kDatalog;
    case EngineKind::kFoCorollary52:
    case EngineKind::kFoNaive:
      return Language::kFo;
  }
  return Language::kXPath;
}

DocStats DocStats::For(const Document& doc) {
  DocStats stats;
  stats.nodes = static_cast<uint64_t>(doc.num_nodes());
  const auto& depth = doc.orders().depth;
  for (int d : depth) {
    stats.depth = std::max(stats.depth, static_cast<uint64_t>(d));
  }
  stats.doc = &doc;
  return stats;
}

uint64_t DocStats::LabelFrequency(std::string_view label) const {
  if (doc == nullptr) return nodes;
  // Items() returns an empty stream for kNullLabel / unknown labels.
  const LabelId id = doc->tree().label_table().Lookup(label);
  return doc->label_index().Items(id).size();
}

uint64_t DocStats::VarCandidates(const IrVar& var) const {
  if (var.labels.empty()) return nodes;
  uint64_t best = nodes;
  for (const std::string& label : var.labels) {
    best = std::min(best, LabelFrequency(label));
  }
  return best;
}

uint64_t EstimateCost(EngineKind kind, const LogicalPlan& plan,
                      const DocStats& stats) {
  const uint64_t n = stats.nodes;
  const uint64_t size = PlanSize(plan);
  switch (kind) {
    case EngineKind::kXPathSetAtATime:
      // |Q| * (n + 1): the Theorem 6.8 set-at-a-time bound — identical to
      // the EstimatedVisits budget the degradation gate used.
      return SatMul(size, SatAdd(n, 1));
    case EngineKind::kXPathNaive:
      // Node-at-a-time recursion touches O(n) per context node.
      return SatMul(size, SatMul(n, n));
    case EngineKind::kXPathStream:
      // One SAX pass; the constant covers per-event transducer work.
      return std::max<uint64_t>(SatMul(6, n), 1);
    case EngineKind::kTwigStack:
      // Holistic: linear in the merged label streams.
      return CandidateCost(plan, stats, 4);
    case EngineKind::kStructuralJoins:
      // Binary joins re-scan intermediate results; a bit worse than twig.
      return CandidateCost(plan, stats, 6);
    case EngineKind::kYannakakis:
      return CandidateCost(plan, stats, 4);
    case EngineKind::kDichotomy:
      // Boolean arc-consistency over candidate sets (X-property path).
      return CandidateCost(plan, stats, 3);
    case EngineKind::kDatalogTmnf:
      // TMNF fixpoint: rules * nodes, two passes amortized.
      return SatMul(size, SatMul(n, 2));
    case EngineKind::kFoCorollary52:
      // Corollary 5.2 pipeline is linear in |formula| * n after rewriting.
      return SatMul(size, SatMul(n, 2));
    case EngineKind::kFoNaive: {
      // n^k quantifier nesting — saturates quickly, as it should.
      uint64_t vars = 0;
      for (const QueryGraph& g : plan.branches) vars += g.vars.size();
      if (!plan.structural()) vars = size;
      uint64_t cost = 1;
      for (uint64_t i = 0; i < std::max<uint64_t>(vars, 1); ++i) {
        cost = SatMul(cost, std::max<uint64_t>(n, 2));
      }
      return cost;
    }
  }
  return UINT64_MAX;
}

}  // namespace plan
}  // namespace treeq
