#ifndef TREEQ_PLAN_CANONICALIZE_H_
#define TREEQ_PLAN_CANONICALIZE_H_

#include "plan/ir.h"

/// \file canonicalize.h
/// Normalizes a logical plan to a canonical form and a stable 128-bit
/// hash, so semantically identical queries — arriving in different
/// languages, dialects, whitespace, or variable orders — share one
/// identity. PlanCache and ResultCache key on the hash.
///
/// Per-branch rewrite rules (each meaning-preserving over all trees):
///   1. inverse axes flip to their forward member (Parent(x,y) ->
///      Child(y,x), ...), so orientation is canonical;
///   2. Self self-loops drop; Self edges merge their endpoints (variable
///      equality) unless both endpoints are distinct output columns;
///   3. unlabeled, non-output, non-root variables of degree 2 sitting
///      between two composable edges collapse into one edge
///      (Child* . Child = Child+, Child* . Child* = Child*, ...);
///   4. unlabeled, non-output, non-root variables of degree <= 1 whose
///      only edge is Child* (either direction) are vacuous (exists v .
///      Child*(v, x) always holds) and drop; isolated ones drop too;
///   5. a root anchor whose variable is unlabeled, non-output, and only
///      the source of Child+/Child* edges demotes to a plain variable
///      (every node is a Child* of the root; a Child+ of the root is any
///      non-root node, exactly the nodes with some proper ancestor);
///   6. labels sort + dedupe per variable; duplicate edges dedupe;
///   7. Boolean non-anchored branches that are connected but not
///      tree-shaped normalize through the Theorem 5.1 rewriting
///      (cq/rewrite.h) into a union of acyclic branches, capped;
///   8. variables reorder canonically (Weisfeiler-Leman color refinement,
///      ties broken by bounded permutation search), branch encodings
///      sort + dedupe.
///
/// The hash is FNV-1a-128 over the canonical encoding (or over the
/// language-tagged opaque rendering). Rule 8's tie-break gives up beyond
/// 64 permutations and keeps source order — two highly symmetric
/// encodings may then miss a share; never a false share beyond 128-bit
/// collision odds.

namespace treeq {
namespace plan {

/// Rewrites `plan` in place to canonical form and returns its hash.
CanonicalHash Canonicalize(LogicalPlan* plan);

}  // namespace plan
}  // namespace treeq

#endif  // TREEQ_PLAN_CANONICALIZE_H_
