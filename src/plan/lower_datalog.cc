#include <map>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "plan/lower.h"

namespace treeq {
namespace plan {

namespace {

/// One unfolded alternative of an intensional predicate: a graph fragment
/// whose `head` variable plays the predicate's argument.
struct Fragment {
  QueryGraph graph;
  int head = 0;
};

class Unfolder {
 public:
  explicit Unfolder(const datalog::Program& program) {
    for (const datalog::Rule& rule : program.rules()) {
      rules_by_pred_[rule.head_pred].push_back(&rule);
    }
  }

  /// Unfolds `pred` into a union of conjunctive fragments by inlining
  /// every rule body, recursively expanding intensional atoms. Fails on
  /// recursion, negation, builtins, and branch blow-up.
  bool Unfold(const std::string& pred, std::vector<Fragment>* out) {
    auto it = rules_by_pred_.find(pred);
    if (it == rules_by_pred_.end()) return false;
    if (in_progress_.count(pred) > 0) return false;  // recursive program
    in_progress_.insert(pred);
    for (const datalog::Rule* rule : it->second) {
      std::vector<Fragment> alts(1);
      // Rule variables map 1:1 into each alternative's graph; expansions
      // of intensional atoms append their own (existential) variables.
      for (Fragment& alt : alts) {
        alt.graph.vars.resize(static_cast<size_t>(rule->num_vars()));
        alt.head = rule->head_var;
      }
      if (!LowerBody(*rule, &alts)) {
        in_progress_.erase(pred);
        return false;
      }
      for (Fragment& alt : alts) out->push_back(std::move(alt));
      if (out->size() > kMaxBranches) {
        in_progress_.erase(pred);
        return false;
      }
    }
    in_progress_.erase(pred);
    return true;
  }

 private:
  bool LowerBody(const datalog::Rule& rule, std::vector<Fragment>* alts) {
    for (const datalog::Atom& atom : rule.body) {
      if (atom.negated) return false;
      switch (atom.kind) {
        case datalog::Atom::Kind::kLabel:
          for (Fragment& alt : *alts) {
            alt.graph.vars[static_cast<size_t>(atom.var0)].labels.push_back(
                atom.label);
          }
          break;
        case datalog::Atom::Kind::kAxis:
          for (Fragment& alt : *alts) {
            alt.graph.edges.push_back(
                IrEdge{atom.var0, atom.var1, atom.axis});
          }
          break;
        case datalog::Atom::Kind::kIntensional: {
          std::vector<Fragment> expansions;
          if (!Unfold(atom.predicate, &expansions)) return false;
          // Cross product: each alternative so far times each expansion,
          // with the expansion's variables appended and its head merged
          // into the atom's variable via a Self edge (the canonicalizer
          // collapses it).
          std::vector<Fragment> next;
          for (const Fragment& alt : *alts) {
            for (const Fragment& exp : expansions) {
              Fragment merged = alt;
              const int base =
                  static_cast<int>(merged.graph.vars.size());
              for (const IrVar& v : exp.graph.vars) {
                merged.graph.vars.push_back(v);
              }
              for (const IrEdge& e : exp.graph.edges) {
                merged.graph.edges.push_back(
                    IrEdge{e.from + base, e.to + base, e.axis});
              }
              merged.graph.edges.push_back(
                  IrEdge{atom.var0, exp.head + base, Axis::kSelf});
              next.push_back(std::move(merged));
              if (next.size() > kMaxBranches) return false;
            }
          }
          *alts = std::move(next);
          break;
        }
        case datalog::Atom::Kind::kUnaryBuiltin:
          return false;  // Root/Leaf/... are outside the CQ fragment
      }
    }
    return true;
  }

  std::map<std::string, std::vector<const datalog::Rule*>> rules_by_pred_;
  std::set<std::string> in_progress_;
};

/// Canonical alpha-renaming of every rule's variables for the opaque
/// rendering (predicate names stay: they are part of the program).
datalog::Program RenameVars(const datalog::Program& program) {
  datalog::Program out = program;
  for (datalog::Rule& rule : out.rules()) {
    for (size_t i = 0; i < rule.var_names.size(); ++i) {
      rule.var_names[i] = "v" + std::to_string(i);
    }
  }
  return out;
}

}  // namespace

LogicalPlan LowerDatalog(const datalog::Program& program) {
  LogicalPlan plan;
  plan.arity = 1;  // a monadic program selects the query predicate's nodes
  Unfolder unfolder(program);
  std::vector<Fragment> fragments;
  if (unfolder.Unfold(program.query_predicate(), &fragments) &&
      fragments.size() <= kMaxBranches) {
    for (Fragment& fragment : fragments) {
      fragment.graph.vars[static_cast<size_t>(fragment.head)].output_ord = 0;
      plan.branches.push_back(std::move(fragment.graph));
    }
    return plan;
  }
  plan.branches.clear();
  plan.opaque = "datalog:" + RenameVars(program).ToString();
  return plan;
}

}  // namespace plan
}  // namespace treeq
