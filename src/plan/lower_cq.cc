#include <string>
#include <utility>

#include "plan/lower.h"

namespace treeq {
namespace plan {

namespace {

/// Canonical alpha-renaming for the opaque rendering: the hash must not
/// depend on the source's variable names.
cq::ConjunctiveQuery RenameVars(const cq::ConjunctiveQuery& query) {
  cq::ConjunctiveQuery out;
  for (int i = 0; i < query.num_vars(); ++i) {
    out.AddVar("v" + std::to_string(i));
  }
  for (const cq::LabelAtom& atom : query.label_atoms()) {
    out.AddLabelAtom(atom.label, atom.var);
  }
  for (const cq::AxisAtom& atom : query.axis_atoms()) {
    out.AddAxisAtom(atom.axis, atom.var0, atom.var1);
  }
  for (int head : query.head_vars()) out.AddHeadVar(head);
  return out;
}

}  // namespace

LogicalPlan LowerCq(const cq::ConjunctiveQuery& query) {
  LogicalPlan plan;
  plan.arity = static_cast<int>(query.head_vars().size());
  QueryGraph graph;
  if (CqToGraph(query, &graph)) {
    plan.branches.push_back(std::move(graph));
    return plan;
  }
  // Duplicate head variables (Q(x, x)) have no per-var output marker;
  // keep the query opaque under a renaming-insensitive rendering.
  plan.opaque = "cq:" + RenameVars(query).ToString();
  return plan;
}

}  // namespace plan
}  // namespace treeq
