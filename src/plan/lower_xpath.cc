#include <string>
#include <utility>
#include <vector>

#include "plan/lower.h"

namespace treeq {
namespace plan {

namespace {

/// One partially-lowered alternative: the graph so far plus the variable
/// the next step extends from. The engine evaluates every path — relative
/// or absolute — from the root context ({root}), so lowering always starts
/// anchored at variable 0 = root; the parser already encoded the
/// relative/absolute distinction in the first step's axis (kChild vs
/// kSelf).
struct State {
  QueryGraph graph;
  int cur = 0;
};

bool LowerPath(const xpath::PathExpr& path, std::vector<State>* states);

bool ApplyQualifier(const xpath::Qualifier& q, std::vector<State>* states) {
  switch (q.kind) {
    case xpath::Qualifier::Kind::kLabel:
      for (State& st : *states) {
        st.graph.vars[static_cast<size_t>(st.cur)].labels.push_back(q.label);
      }
      return true;
    case xpath::Qualifier::Kind::kAnd:
      return ApplyQualifier(*q.left, states) &&
             ApplyQualifier(*q.right, states);
    case xpath::Qualifier::Kind::kOr: {
      std::vector<State> other = *states;
      if (!ApplyQualifier(*q.left, states)) return false;
      if (!ApplyQualifier(*q.right, &other)) return false;
      for (State& st : other) states->push_back(std::move(st));
      return states->size() <= kMaxBranches;
    }
    case xpath::Qualifier::Kind::kPath: {
      // Existential sub-path from the qualified variable: the sub-path's
      // variables join the graph but the context variable stays put. Each
      // input state is lowered separately because the qualified variable's
      // index differs between states forked by earlier unions.
      std::vector<State> result;
      for (State& st : *states) {
        const int qualified = st.cur;
        std::vector<State> sub;
        sub.push_back(std::move(st));
        if (!LowerPath(*q.path, &sub)) return false;
        for (State& out : sub) {
          out.cur = qualified;
          result.push_back(std::move(out));
        }
        if (result.size() > kMaxBranches) return false;
      }
      *states = std::move(result);
      return true;
    }
    case xpath::Qualifier::Kind::kNot:
      return false;  // outside the structural fragment
  }
  return false;
}

bool LowerStep(const xpath::PathExpr& step, std::vector<State>* states) {
  if (step.axis != Axis::kSelf) {
    for (State& st : *states) {
      const int next = static_cast<int>(st.graph.vars.size());
      st.graph.vars.emplace_back();
      st.graph.edges.push_back(IrEdge{st.cur, next, step.axis});
      st.cur = next;
    }
  }
  for (const std::unique_ptr<xpath::Qualifier>& q : step.qualifiers) {
    if (!ApplyQualifier(*q, states)) return false;
  }
  return true;
}

bool LowerPath(const xpath::PathExpr& path, std::vector<State>* states) {
  switch (path.kind) {
    case xpath::PathExpr::Kind::kStep:
      return LowerStep(path, states);
    case xpath::PathExpr::Kind::kSeq:
      return LowerPath(*path.left, states) && LowerPath(*path.right, states);
    case xpath::PathExpr::Kind::kUnion: {
      std::vector<State> other = *states;
      if (!LowerPath(*path.left, states)) return false;
      if (!LowerPath(*path.right, &other)) return false;
      for (State& st : other) states->push_back(std::move(st));
      return states->size() <= kMaxBranches;
    }
  }
  return false;
}

}  // namespace

LogicalPlan LowerXPath(const xpath::PathExpr& path) {
  LogicalPlan plan;
  plan.arity = 1;
  std::vector<State> states(1);
  states[0].graph.anchored = true;
  states[0].graph.vars.emplace_back();  // v0 = document root
  states[0].cur = 0;
  if (LowerPath(path, &states)) {
    for (State& st : states) {
      st.graph.vars[static_cast<size_t>(st.cur)].output_ord = 0;
      plan.branches.push_back(std::move(st.graph));
    }
    return plan;
  }
  plan.branches.clear();
  plan.opaque = "xpath:" + xpath::ToString(path);
  return plan;
}

}  // namespace plan
}  // namespace treeq
