#include "plan/route.h"

#include <algorithm>
#include <chrono>

#include "obs/obs.h"

namespace treeq {
namespace plan {

namespace {

/// TREEQ_OBS_INC caches one counter per macro site, so each engine's
/// route counter needs its own literal.
void CountRouteEngine(EngineKind kind) {
  switch (kind) {
    case EngineKind::kXPathSetAtATime:
      TREEQ_OBS_INC("plan.route.xpath_set_at_a_time");
      break;
    case EngineKind::kXPathNaive:
      TREEQ_OBS_INC("plan.route.xpath_naive");
      break;
    case EngineKind::kXPathStream:
      TREEQ_OBS_INC("plan.route.xpath_stream");
      break;
    case EngineKind::kTwigStack:
      TREEQ_OBS_INC("plan.route.cq_twigstack");
      break;
    case EngineKind::kStructuralJoins:
      TREEQ_OBS_INC("plan.route.cq_structural_joins");
      break;
    case EngineKind::kYannakakis:
      TREEQ_OBS_INC("plan.route.cq_yannakakis");
      break;
    case EngineKind::kDichotomy:
      TREEQ_OBS_INC("plan.route.cq_dichotomy");
      break;
    case EngineKind::kDatalogTmnf:
      TREEQ_OBS_INC("plan.route.datalog_tmnf");
      break;
    case EngineKind::kFoCorollary52:
      TREEQ_OBS_INC("plan.route.fo_corollary52");
      break;
    case EngineKind::kFoNaive:
      TREEQ_OBS_INC("plan.route.fo_naive");
      break;
  }
}

}  // namespace

RouteDecision Route(const LogicalPlan& plan,
                    const std::vector<EngineKind>& eligible,
                    EngineKind native, const DocStats& stats) {
  const auto start = std::chrono::steady_clock::now();
  RouteDecision decision;
  for (EngineKind kind : eligible) {
    RouteCandidate c;
    c.kind = kind;
    c.native = kind == native;
    c.cost = EstimateCost(kind, plan, stats);
    if (c.native) {
      // 20% native discount: defect only for a predicted win, not noise.
      c.cost -= c.cost / 5;
    }
    decision.candidates.push_back(c);
  }
  std::stable_sort(decision.candidates.begin(), decision.candidates.end(),
                   [](const RouteCandidate& a, const RouteCandidate& b) {
                     if (a.cost != b.cost) return a.cost < b.cost;
                     return a.native && !b.native;  // native wins ties
                   });
  decision.chosen =
      decision.candidates.empty() ? native : decision.candidates[0].kind;
  decision.rationale = EngineName(decision.chosen);
  decision.rationale += " cost=";
  decision.rationale += decision.candidates.empty()
                            ? "?"
                            : std::to_string(decision.candidates[0].cost);
  if (decision.chosen != native) {
    decision.rationale += " (native ";
    decision.rationale += EngineName(native);
    for (const RouteCandidate& c : decision.candidates) {
      if (c.kind == native) {
        decision.rationale += " cost=" + std::to_string(c.cost);
        break;
      }
    }
    decision.rationale += ")";
  }
  TREEQ_OBS_INC("plan.route.decisions");
  CountRouteEngine(decision.chosen);
  const auto elapsed = std::chrono::steady_clock::now() - start;
  TREEQ_OBS_HISTOGRAM(
      "plan.cost_ns",
      std::chrono::duration_cast<std::chrono::nanoseconds>(elapsed)
          .count());
  return decision;
}

}  // namespace plan
}  // namespace treeq
