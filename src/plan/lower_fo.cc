#include <algorithm>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "plan/lower.h"

namespace treeq {
namespace plan {

namespace {

/// Lowers positive existential sentences. Each alternative is a graph
/// under construction; `env` maps in-scope FO variable names to graph
/// variable indices (per alternative the indices coincide: quantifiers
/// allocate into every alternative in lockstep).
class FoLowerer {
 public:
  bool Lower(const fo::Formula& f, std::vector<QueryGraph>* alts) {
    switch (f.kind) {
      case fo::Formula::Kind::kLabel: {
        int v = VarFor(f.var0);
        if (v < 0) return false;
        for (QueryGraph& g : *alts) {
          g.vars[static_cast<size_t>(v)].labels.push_back(f.label);
        }
        return true;
      }
      case fo::Formula::Kind::kAxis: {
        int v0 = VarFor(f.var0);
        int v1 = VarFor(f.var1);
        if (v0 < 0 || v1 < 0) return false;
        for (QueryGraph& g : *alts) {
          g.edges.push_back(IrEdge{v0, v1, f.axis});
        }
        return true;
      }
      case fo::Formula::Kind::kEquals: {
        // x = y is Self(x, y); the canonicalizer merges the endpoints.
        int v0 = VarFor(f.var0);
        int v1 = VarFor(f.var1);
        if (v0 < 0 || v1 < 0) return false;
        for (QueryGraph& g : *alts) {
          g.edges.push_back(IrEdge{v0, v1, Axis::kSelf});
        }
        return true;
      }
      case fo::Formula::Kind::kAnd:
        return Lower(*f.left, alts) && Lower(*f.right, alts);
      case fo::Formula::Kind::kOr: {
        // Each side lowers with its own copy of the scope state (its
        // quantifiers must not leak into the other side), then the merged
        // alternatives are padded to a common variable count so later
        // lockstep allocations stay index-consistent. Padding variables
        // are unconstrained (exists v . true); the canonicalizer prunes
        // them.
        std::vector<QueryGraph> other = *alts;
        FoLowerer right = *this;
        if (!Lower(*f.left, alts)) return false;
        if (!right.Lower(*f.right, &other)) return false;
        for (QueryGraph& g : other) alts->push_back(std::move(g));
        if (alts->size() > kMaxBranches) return false;
        size_t max_vars = 0;
        for (const QueryGraph& g : *alts) {
          max_vars = std::max(max_vars, g.vars.size());
        }
        for (QueryGraph& g : *alts) g.vars.resize(max_vars);
        next_var_ = static_cast<int>(max_vars);
        return true;
      }
      case fo::Formula::Kind::kExists: {
        const int index = next_var_++;
        for (QueryGraph& g : *alts) g.vars.emplace_back();
        auto [it, fresh] = env_.try_emplace(f.var0, index);
        const int shadowed = fresh ? -1 : it->second;
        it->second = index;
        const bool ok = Lower(*f.left, alts);
        if (shadowed >= 0) {
          it->second = shadowed;
        } else {
          env_.erase(f.var0);
        }
        return ok;
      }
      case fo::Formula::Kind::kNot:
      case fo::Formula::Kind::kForAll:
        return false;  // outside the positive existential fragment
    }
    return false;
  }

 private:
  int VarFor(const std::string& name) const {
    auto it = env_.find(name);
    return it == env_.end() ? -1 : it->second;
  }

  std::map<std::string, int> env_;
  int next_var_ = 0;
};

/// Canonical alpha-renaming for the opaque rendering: quantified variables
/// become v0, v1, ... in binding order, so the hash ignores source names.
std::unique_ptr<fo::Formula> Rename(const fo::Formula& f,
                                    std::map<std::string, std::string>* env,
                                    int* next) {
  auto mapped = [env](const std::string& name) {
    auto it = env->find(name);
    return it == env->end() ? name : it->second;
  };
  std::unique_ptr<fo::Formula> out = f.Clone();
  switch (f.kind) {
    case fo::Formula::Kind::kLabel:
      out->var0 = mapped(f.var0);
      return out;
    case fo::Formula::Kind::kAxis:
    case fo::Formula::Kind::kEquals:
      out->var0 = mapped(f.var0);
      out->var1 = mapped(f.var1);
      return out;
    case fo::Formula::Kind::kAnd:
    case fo::Formula::Kind::kOr:
      out->left = Rename(*f.left, env, next);
      out->right = Rename(*f.right, env, next);
      return out;
    case fo::Formula::Kind::kNot:
      out->left = Rename(*f.left, env, next);
      return out;
    case fo::Formula::Kind::kExists:
    case fo::Formula::Kind::kForAll: {
      const std::string fresh = "v" + std::to_string((*next)++);
      auto it = env->find(f.var0);
      const bool had = it != env->end();
      const std::string shadowed = had ? it->second : "";
      (*env)[f.var0] = fresh;
      out->var0 = fresh;
      out->left = Rename(*f.left, env, next);
      if (had) {
        (*env)[f.var0] = shadowed;
      } else {
        env->erase(f.var0);
      }
      return out;
    }
  }
  return out;
}

}  // namespace

LogicalPlan LowerFo(const fo::Formula& sentence) {
  LogicalPlan plan;
  plan.arity = 0;  // Plan::Compile only accepts sentences
  FoLowerer lowerer;
  std::vector<QueryGraph> alts(1);
  if (lowerer.Lower(sentence, &alts)) {
    plan.branches = std::move(alts);
    return plan;
  }
  std::map<std::string, std::string> env;
  int next = 0;
  plan.branches.clear();
  plan.opaque = "fo:" + fo::ToString(*Rename(sentence, &env, &next));
  return plan;
}

}  // namespace plan
}  // namespace treeq
