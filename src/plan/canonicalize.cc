#include "plan/canonicalize.h"

#include <algorithm>
#include <map>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "cq/rewrite.h"
#include "obs/obs.h"

namespace treeq {
namespace plan {

namespace {

/// Rewrite-rule size caps: the Theorem 5.1 rewriting is exponential in the
/// variable count, so it only runs on small branches, and its output only
/// replaces the branch when the union stays small.
constexpr int kMaxRewriteVars = 8;
constexpr size_t kMaxRewriteBranches = 16;
/// Tie-break permutation budget for the canonical variable order.
constexpr uint64_t kMaxTiePermutations = 64;

/// Rule 1: R^-1(x, y) becomes R(y, x). (IsForwardAxis is tree/axes.h's.)
void FlipInverseAxes(QueryGraph* g) {
  for (IrEdge& e : g->edges) {
    if (!IsForwardAxis(e.axis)) {
      std::swap(e.from, e.to);
      e.axis = InverseAxis(e.axis);
    }
  }
}

/// Rebuilds `g` keeping only vars with remap[i] >= 0; edges are re-pointed
/// (callers guarantee no surviving edge references a dropped var).
void Compact(QueryGraph* g, const std::vector<int>& remap, int new_count) {
  std::vector<IrVar> vars(static_cast<size_t>(new_count));
  for (size_t i = 0; i < g->vars.size(); ++i) {
    if (remap[i] < 0) continue;
    IrVar& dst = vars[static_cast<size_t>(remap[i])];
    for (std::string& label : g->vars[i].labels) {
      dst.labels.push_back(std::move(label));
    }
    if (g->vars[i].output_ord >= 0) dst.output_ord = g->vars[i].output_ord;
  }
  for (IrEdge& e : g->edges) {
    e.from = remap[static_cast<size_t>(e.from)];
    e.to = remap[static_cast<size_t>(e.to)];
  }
  g->vars = std::move(vars);
}

/// Rule 2: drops Self self-loops and merges Self-edge endpoints. Two
/// distinct output columns joined by Self keep the edge (one variable
/// cannot carry two output positions). Returns true if anything changed.
bool MergeSelfEdges(QueryGraph* g) {
  std::vector<int> parent(g->vars.size());
  for (size_t i = 0; i < parent.size(); ++i) parent[i] = static_cast<int>(i);
  auto find = [&parent](int v) {
    while (parent[static_cast<size_t>(v)] != v) {
      v = parent[static_cast<size_t>(v)] =
          parent[static_cast<size_t>(parent[static_cast<size_t>(v)])];
    }
    return v;
  };
  bool changed = false;
  std::vector<IrEdge> kept;
  for (const IrEdge& e : g->edges) {
    if (e.axis != Axis::kSelf) {
      kept.push_back(e);
      continue;
    }
    int a = find(e.from);
    int b = find(e.to);
    if (a == b) {
      changed = true;  // self-loop: always true, drop
      continue;
    }
    const IrVar& va = g->vars[static_cast<size_t>(a)];
    const IrVar& vb = g->vars[static_cast<size_t>(b)];
    if (va.is_output() && vb.is_output() &&
        va.output_ord != vb.output_ord) {
      kept.push_back(e);  // both columns must survive; keep the equality
      continue;
    }
    // Merge into the smaller index so an anchored root stays var 0.
    parent[static_cast<size_t>(std::max(a, b))] = std::min(a, b);
    changed = true;
  }
  if (!changed) return false;
  g->edges = std::move(kept);
  std::vector<int> remap(g->vars.size(), -1);
  int next = 0;
  for (size_t i = 0; i < g->vars.size(); ++i) {
    if (find(static_cast<int>(i)) == static_cast<int>(i)) {
      remap[i] = next++;
    }
  }
  for (size_t i = 0; i < g->vars.size(); ++i) {
    if (remap[i] < 0) {
      // Fold this var into its class representative before compaction.
      const int rep = find(static_cast<int>(i));
      IrVar& dst = g->vars[static_cast<size_t>(rep)];
      for (std::string& label : g->vars[i].labels) {
        dst.labels.push_back(std::move(label));
      }
      if (g->vars[i].output_ord >= 0) {
        dst.output_ord = g->vars[i].output_ord;
      }
      g->vars[i].labels.clear();
      g->vars[i].output_ord = -1;
    }
  }
  for (IrEdge& e : g->edges) {
    e.from = find(e.from);
    e.to = find(e.to);
  }
  Compact(g, remap, next);
  return true;
}

/// Rule 3's composition table: axis(u, v) . axis(v, w) => axis(u, w) when
/// the middle variable is otherwise unconstrained.
std::optional<Axis> ComposeAxes(Axis a, Axis b) {
  const Axis ds = Axis::kDescendantOrSelf;
  const Axis d = Axis::kDescendant;
  const Axis c = Axis::kChild;
  const Axis ss = Axis::kFollowingSiblingOrSelf;
  const Axis sp = Axis::kFollowingSibling;
  const Axis sn = Axis::kNextSibling;
  if (a == ds && b == ds) return ds;
  if ((a == ds && (b == c || b == d)) || ((a == c || a == d) && b == ds)) {
    return d;
  }
  if (a == ss && b == ss) return ss;
  if ((a == ss && (b == sn || b == sp)) ||
      ((a == sn || a == sp) && b == ss)) {
    return sp;
  }
  return std::nullopt;
}

bool RemovableVar(const QueryGraph& g, size_t i) {
  return g.vars[i].labels.empty() && !g.vars[i].is_output() &&
         !(g.anchored && i == 0);
}

/// Rule 3: collapses an invisible degree-2 variable between two composable
/// edges. Returns true if a collapse happened.
bool CollapseInvisibleMiddle(QueryGraph* g) {
  for (size_t v = 0; v < g->vars.size(); ++v) {
    if (!RemovableVar(*g, v)) continue;
    int in = -1, out = -1, degree = 0;
    for (size_t e = 0; e < g->edges.size(); ++e) {
      if (g->edges[e].from == static_cast<int>(v)) {
        ++degree;
        out = static_cast<int>(e);
      }
      if (g->edges[e].to == static_cast<int>(v)) {
        ++degree;
        in = static_cast<int>(e);
      }
    }
    if (degree != 2 || in < 0 || out < 0 || in == out) continue;
    const IrEdge& ein = g->edges[static_cast<size_t>(in)];
    const IrEdge& eout = g->edges[static_cast<size_t>(out)];
    if (ein.from == eout.to) continue;  // collapsing would make a loop
    std::optional<Axis> composed = ComposeAxes(ein.axis, eout.axis);
    if (!composed.has_value()) continue;
    IrEdge merged{ein.from, eout.to, *composed};
    std::vector<IrEdge> edges;
    for (size_t e = 0; e < g->edges.size(); ++e) {
      if (static_cast<int>(e) != in && static_cast<int>(e) != out) {
        edges.push_back(g->edges[e]);
      }
    }
    edges.push_back(merged);
    g->edges = std::move(edges);
    std::vector<int> remap(g->vars.size(), -1);
    int next = 0;
    for (size_t i = 0; i < g->vars.size(); ++i) {
      if (i != v) remap[i] = next++;
    }
    Compact(g, remap, next);
    return true;
  }
  return false;
}

/// Rule 4: drops vacuous variables — unlabeled, non-output, non-root, with
/// at most one incident edge, that edge being Child* in either direction
/// (exists v . Child*(v, x) and exists v . Child*(x, v) both always hold).
/// Isolated unconstrained variables (exists v . true) drop too, except the
/// last variable of a branch (a graph needs one variable to mean "true").
bool PruneVacuousVars(QueryGraph* g) {
  for (size_t v = 0; v < g->vars.size(); ++v) {
    if (!RemovableVar(*g, v)) continue;
    int incident = -1, degree = 0;
    for (size_t e = 0; e < g->edges.size(); ++e) {
      if (g->edges[e].from == static_cast<int>(v) ||
          g->edges[e].to == static_cast<int>(v)) {
        ++degree;
        incident = static_cast<int>(e);
      }
    }
    if (degree > 1) continue;
    if (degree == 1) {
      const IrEdge& e = g->edges[static_cast<size_t>(incident)];
      if (e.axis != Axis::kDescendantOrSelf) continue;
      if (e.from == e.to) continue;
      g->edges.erase(g->edges.begin() + incident);
    } else if (g->vars.size() == 1) {
      continue;
    }
    std::vector<int> remap(g->vars.size(), -1);
    int next = 0;
    for (size_t i = 0; i < g->vars.size(); ++i) {
      if (i != v) remap[i] = next++;
    }
    Compact(g, remap, next);
    return true;
  }
  return false;
}

/// Rule 5: demotes the root anchor when the root variable is unlabeled,
/// not output, and only the *source* of Child+/Child* edges: every node is
/// Child* of the root, and a Child+ of the root is exactly a node with
/// some proper ancestor — both expressible with an existential variable.
bool DemoteAnchor(QueryGraph* g) {
  if (!g->anchored) return false;
  const IrVar& root = g->vars[0];
  if (!root.labels.empty() || root.is_output()) return false;
  for (const IrEdge& e : g->edges) {
    if (e.to == 0) return false;
    if (e.from == 0 && e.axis != Axis::kDescendant &&
        e.axis != Axis::kDescendantOrSelf) {
      return false;
    }
  }
  g->anchored = false;
  return true;
}

/// Rule 6: sorted, deduplicated labels and edges.
void SortAndDedupe(QueryGraph* g) {
  for (IrVar& var : g->vars) {
    std::sort(var.labels.begin(), var.labels.end());
    var.labels.erase(std::unique(var.labels.begin(), var.labels.end()),
                     var.labels.end());
  }
  auto edge_key = [](const IrEdge& e) {
    return std::tuple<int, int, int>(e.from, e.to, static_cast<int>(e.axis));
  };
  std::sort(g->edges.begin(), g->edges.end(),
            [&edge_key](const IrEdge& a, const IrEdge& b) {
              return edge_key(a) < edge_key(b);
            });
  g->edges.erase(std::unique(g->edges.begin(), g->edges.end(),
                             [&edge_key](const IrEdge& a, const IrEdge& b) {
                               return edge_key(a) == edge_key(b);
                             }),
                 g->edges.end());
}

/// Rules 1-6 to fixpoint.
void NormalizeBranch(QueryGraph* g) {
  FlipInverseAxes(g);
  bool changed = true;
  // Each rule strictly shrinks vars+edges or fires at most once, so the
  // loop terminates well before this bound; the bound is a safety net.
  int fuel = static_cast<int>(g->vars.size() + g->edges.size()) * 4 + 8;
  while (changed && fuel-- > 0) {
    changed = false;
    if (MergeSelfEdges(g)) changed = true;
    if (CollapseInvisibleMiddle(g)) changed = true;
    if (PruneVacuousVars(g)) changed = true;
    if (DemoteAnchor(g)) changed = true;
  }
  SortAndDedupe(g);
}

bool RewriteSupportedAxis(Axis axis) {
  return axis != Axis::kFirstChild && axis != Axis::kFirstChildInv;
}

/// Rule 7: Theorem 5.1 normalization of small cyclic Boolean branches into
/// unions of acyclic branches. `branch` is replaced by zero or more graphs
/// appended to `out`; returns false (leaving `out` untouched) when the
/// rewrite does not apply or blows up — the caller keeps the original.
bool RewriteBooleanBranch(const QueryGraph& branch,
                          std::vector<QueryGraph>* out) {
  if (branch.anchored || !branch.IsConnected()) return false;
  if (branch.vars.size() > static_cast<size_t>(kMaxRewriteVars)) {
    return false;
  }
  for (const IrEdge& e : branch.edges) {
    if (!RewriteSupportedAxis(e.axis)) return false;
  }
  cq::ConjunctiveQuery query;
  if (!GraphToCq(branch, &query)) return false;
  if (query.IsTreeShaped()) return false;  // already normal
  Result<cq::RewriteOutput> rewritten =
      cq::RewriteToAcyclicUnionLazy(query);
  if (!rewritten.ok()) return false;
  if (rewritten->queries.empty() ||
      rewritten->queries.size() > kMaxRewriteBranches) {
    // Empty means unsatisfiable; keeping the original branch is correct
    // (it selects nothing) and avoids a constant-false special case.
    return false;
  }
  std::vector<QueryGraph> graphs;
  for (const cq::ConjunctiveQuery& q : rewritten->queries) {
    QueryGraph g;
    if (!CqToGraph(q, &g)) return false;
    NormalizeBranch(&g);
    graphs.push_back(std::move(g));
  }
  for (QueryGraph& g : graphs) out->push_back(std::move(g));
  TREEQ_OBS_INC("plan.canon.rewrites");
  return true;
}

/// Rule 8: canonical variable order by Weisfeiler-Leman color refinement.
/// Returns per-var final color ranks (root — whose initial color is
/// distinct — always lands in rank 0's singleton class when anchored).
std::vector<int> RefineColors(const QueryGraph& g) {
  const size_t n = g.vars.size();
  std::vector<std::string> colors(n);
  for (size_t i = 0; i < n; ++i) {
    std::string c = (g.anchored && i == 0) ? "0" : "1";
    c += "|o" + std::to_string(g.vars[i].output_ord) + "|";
    for (const std::string& label : g.vars[i].labels) c += label + ",";
    colors[i] = std::move(c);
  }
  size_t distinct = 0;
  for (size_t round = 0; round <= n; ++round) {
    std::vector<std::string> next(n);
    for (size_t i = 0; i < n; ++i) {
      std::vector<std::string> sigs;
      for (const IrEdge& e : g.edges) {
        if (e.from == static_cast<int>(i)) {
          sigs.push_back("+" + std::to_string(static_cast<int>(e.axis)) +
                         ":" + colors[static_cast<size_t>(e.to)]);
        }
        if (e.to == static_cast<int>(i)) {
          sigs.push_back("-" + std::to_string(static_cast<int>(e.axis)) +
                         ":" + colors[static_cast<size_t>(e.from)]);
        }
      }
      std::sort(sigs.begin(), sigs.end());
      next[i] = colors[i] + "#";
      for (const std::string& s : sigs) next[i] += s + ";";
    }
    // Compress to ranks; rank order follows lexicographic color order, so
    // refinement keeps the previous round's relative order (each new color
    // is prefixed by the old one).
    std::map<std::string, int> ranks;
    for (const std::string& c : next) ranks.emplace(c, 0);
    int r = 0;
    for (auto& [color, rank] : ranks) rank = r++;
    const size_t now = ranks.size();
    for (size_t i = 0; i < n; ++i) {
      colors[i] = std::to_string(ranks[next[i]]);
      // Re-expand to a prefix-stable form for the next round's comparison.
      colors[i] = std::string(8 - std::min<size_t>(8, colors[i].size()),
                              '0') +
                  colors[i];
    }
    if (now == distinct) break;  // stabilized
    distinct = now;
  }
  std::vector<int> result(n);
  std::map<std::string, int> final_ranks;
  for (const std::string& c : colors) final_ranks.emplace(c, 0);
  int r = 0;
  for (auto& [color, rank] : final_ranks) rank = r++;
  for (size_t i = 0; i < n; ++i) result[i] = final_ranks[colors[i]];
  return result;
}

/// Canonical encoding of `g` under the variable order `order` (order[k] =
/// old index of the var at canonical position k).
std::string EncodeWithOrder(const QueryGraph& g,
                            const std::vector<int>& order) {
  std::vector<int> position(order.size());
  for (size_t k = 0; k < order.size(); ++k) {
    position[static_cast<size_t>(order[k])] = static_cast<int>(k);
  }
  std::string out = g.anchored ? "A;" : ";";
  for (size_t k = 0; k < order.size(); ++k) {
    const IrVar& var = g.vars[static_cast<size_t>(order[k])];
    out += "v";
    for (const std::string& label : var.labels) out += label + ",";
    out += "|o" + std::to_string(var.output_ord) + ";";
  }
  std::vector<std::tuple<int, int, int>> edges;
  for (const IrEdge& e : g.edges) {
    edges.emplace_back(position[static_cast<size_t>(e.from)],
                       position[static_cast<size_t>(e.to)],
                       static_cast<int>(e.axis));
  }
  std::sort(edges.begin(), edges.end());
  for (const auto& [from, to, axis] : edges) {
    out += "e" + std::to_string(from) + "," + std::to_string(to) + "," +
           std::to_string(axis) + ";";
  }
  return out;
}

/// Reorders `g`'s variables canonically and returns the encoding.
std::string CanonicalizeOrder(QueryGraph* g) {
  const size_t n = g->vars.size();
  std::vector<int> ranks = RefineColors(*g);
  std::vector<int> order(n);
  for (size_t i = 0; i < n; ++i) order[i] = static_cast<int>(i);
  std::stable_sort(order.begin(), order.end(), [&ranks](int a, int b) {
    return ranks[static_cast<size_t>(a)] < ranks[static_cast<size_t>(b)];
  });
  // Tie groups: runs of equal rank. Enumerate their permutations (bounded)
  // and keep the lexicographically smallest encoding.
  std::vector<std::pair<size_t, size_t>> groups;  // [begin, end) positions
  uint64_t total = 1;
  for (size_t b = 0; b < n;) {
    size_t e = b + 1;
    while (e < n && ranks[static_cast<size_t>(order[e])] ==
                        ranks[static_cast<size_t>(order[b])]) {
      ++e;
    }
    if (e - b > 1) {
      groups.emplace_back(b, e);
      for (size_t k = 2; k <= e - b && total <= kMaxTiePermutations; ++k) {
        total *= k;
      }
    }
    b = e;
  }
  std::string best = EncodeWithOrder(*g, order);
  if (!groups.empty() && total <= kMaxTiePermutations) {
    std::vector<int> candidate = order;
    // Nested next_permutation over the tie groups (odometer style).
    std::vector<std::vector<int>> perms;
    for (const auto& [b, e] : groups) {
      perms.emplace_back(candidate.begin() + static_cast<long>(b),
                         candidate.begin() + static_cast<long>(e));
      std::sort(perms.back().begin(), perms.back().end());
    }
    bool more = true;
    while (more) {
      for (size_t gi = 0; gi < groups.size(); ++gi) {
        std::copy(perms[gi].begin(), perms[gi].end(),
                  candidate.begin() + static_cast<long>(groups[gi].first));
      }
      std::string enc = EncodeWithOrder(*g, candidate);
      if (enc < best) {
        best = std::move(enc);
        order = candidate;
      }
      more = false;
      for (size_t gi = 0; gi < groups.size(); ++gi) {
        if (std::next_permutation(perms[gi].begin(), perms[gi].end())) {
          more = true;
          break;
        }
        // This group wrapped to its first permutation; carry to the next.
      }
    }
  }
  // Apply the chosen order to the graph itself so downstream consumers
  // (rendering, engine-form synthesis) see the canonical form.
  std::vector<int> position(n);
  for (size_t k = 0; k < n; ++k) {
    position[static_cast<size_t>(order[k])] = static_cast<int>(k);
  }
  std::vector<IrVar> vars(n);
  for (size_t k = 0; k < n; ++k) {
    vars[k] = std::move(g->vars[static_cast<size_t>(order[k])]);
  }
  g->vars = std::move(vars);
  for (IrEdge& e : g->edges) {
    e.from = position[static_cast<size_t>(e.from)];
    e.to = position[static_cast<size_t>(e.to)];
  }
  SortAndDedupe(g);
  return best;
}

struct Fnv128 {
  unsigned __int128 h = (static_cast<unsigned __int128>(
                             0x6c62272e07bb0142ULL)
                         << 64) |
                        0x62b821756295c58dULL;

  void Update(const std::string& bytes) {
    // FNV-1a-128: prime = 2^88 + 2^8 + 0x3b.
    const unsigned __int128 prime =
        (static_cast<unsigned __int128>(1) << 88) | 0x13BULL;
    for (char c : bytes) {
      h ^= static_cast<unsigned char>(c);
      h *= prime;
    }
  }

  CanonicalHash Digest() const {
    CanonicalHash out;
    out.hi = static_cast<uint64_t>(h >> 64);
    out.lo = static_cast<uint64_t>(h);
    return out;
  }
};

}  // namespace

CanonicalHash Canonicalize(LogicalPlan* plan) {
  TREEQ_OBS_INC("plan.canon.hashes");
  Fnv128 hash;
  hash.Update("arity=" + std::to_string(plan->arity) + "\n");
  if (!plan->structural()) {
    hash.Update(plan->opaque);
    return hash.Digest();
  }
  for (QueryGraph& branch : plan->branches) {
    NormalizeBranch(&branch);
  }
  if (plan->arity == 0) {
    std::vector<QueryGraph> normalized;
    for (QueryGraph& branch : plan->branches) {
      if (!RewriteBooleanBranch(branch, &normalized)) {
        normalized.push_back(std::move(branch));
      }
    }
    plan->branches = std::move(normalized);
  }
  std::vector<std::pair<std::string, QueryGraph>> encoded;
  for (QueryGraph& branch : plan->branches) {
    std::string enc = CanonicalizeOrder(&branch);
    encoded.emplace_back(std::move(enc), std::move(branch));
  }
  std::sort(encoded.begin(), encoded.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  encoded.erase(std::unique(encoded.begin(), encoded.end(),
                            [](const auto& a, const auto& b) {
                              return a.first == b.first;
                            }),
                encoded.end());
  plan->branches.clear();
  for (auto& [enc, branch] : encoded) {
    hash.Update(enc);
    hash.Update("\n");
    plan->branches.push_back(std::move(branch));
  }
  return hash.Digest();
}

}  // namespace plan
}  // namespace treeq
