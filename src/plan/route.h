#ifndef TREEQ_PLAN_ROUTE_H_
#define TREEQ_PLAN_ROUTE_H_

#include <string>
#include <vector>

#include "plan/cost.h"

/// \file route.h
/// The cost-based engine router. Given a logical plan, the engines that
/// can answer it (computed at compile time by engine/plan.cc), and the
/// document's statistics, Route() scores every candidate with
/// EstimateCost and picks the cheapest — with a mild thumb on the scale
/// for the query's native engine, so ties and near-ties keep the
/// historically expected pipeline.
///
/// Metrics: every decision bumps plan.route.decisions and a per-engine
/// plan.route.<engine> counter, and records the decision latency in the
/// plan.cost_ns histogram.

namespace treeq {
namespace plan {

/// One scored candidate, reported through Plan::ExplainRouting.
struct RouteCandidate {
  EngineKind kind = EngineKind::kXPathSetAtATime;
  uint64_t cost = 0;
  bool native = false;
};

/// The router's verdict for one execution.
struct RouteDecision {
  EngineKind chosen = EngineKind::kXPathSetAtATime;
  /// All scored candidates, cheapest first.
  std::vector<RouteCandidate> candidates;
  /// One-line human rationale, e.g.
  /// "cq.twigstack cost=52 (native xpath.set_at_a_time cost=804)".
  std::string rationale;
};

/// Scores `eligible` (must be non-empty and contain `native`) against
/// `stats` and returns the cheapest engine. The native engine's score gets
/// a 20% discount: it is the only engine whose constants we trust from
/// the source language's own tests, so the router only defects from it
/// for a predicted win, never on noise.
RouteDecision Route(const LogicalPlan& plan,
                    const std::vector<EngineKind>& eligible,
                    EngineKind native, const DocStats& stats);

}  // namespace plan
}  // namespace treeq

#endif  // TREEQ_PLAN_ROUTE_H_
