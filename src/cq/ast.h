#ifndef TREEQ_CQ_AST_H_
#define TREEQ_CQ_AST_H_

#include <string>
#include <vector>

#include "tree/axes.h"
#include "tree/tree.h"
#include "util/status.h"

/// \file ast.h
/// Conjunctive queries over trees (Sections 4-6): conjunctions of unary
/// label atoms Lab_a(x) and binary axis atoms R(x, y), with a tuple of head
/// (output) variables — empty for Boolean queries.

namespace treeq {
namespace cq {

/// Lab_label(var).
struct LabelAtom {
  std::string label;
  int var = -1;
};

/// axis(var0, var1).
struct AxisAtom {
  Axis axis = Axis::kSelf;
  int var0 = -1;
  int var1 = -1;
};

/// A conjunctive query. Variables are dense indices with display names.
class ConjunctiveQuery {
 public:
  /// Adds a variable and returns its index.
  int AddVar(std::string name);
  /// Returns the index for `name`, adding it if new.
  int VarByName(const std::string& name);

  void AddLabelAtom(std::string label, int var);
  void AddAxisAtom(Axis axis, int var0, int var1);
  void AddHeadVar(int var) { head_vars_.push_back(var); }

  int num_vars() const { return static_cast<int>(var_names_.size()); }
  const std::vector<std::string>& var_names() const { return var_names_; }
  const std::vector<LabelAtom>& label_atoms() const { return label_atoms_; }
  const std::vector<AxisAtom>& axis_atoms() const { return axis_atoms_; }
  const std::vector<int>& head_vars() const { return head_vars_; }
  bool IsBoolean() const { return head_vars_.empty(); }

  /// Size |Q| = number of atoms plus variables.
  int Size() const {
    return num_vars() + static_cast<int>(label_atoms_.size()) +
           static_cast<int>(axis_atoms_.size());
  }

  /// All distinct axes used (after this, signatures can be classified per
  /// Theorem 6.8).
  std::vector<Axis> AxesUsed() const;

  /// Structural checks on the query graph (variables as vertices, binary
  /// atoms as edges):
  ///  - IsConnected: one component (isolated variables count as components).
  ///  - IsTreeShaped: connected, acyclic, no parallel edges, no self-loop
  ///    axis atoms. Tree-shaped queries are exactly the ones the full
  ///    reducer (yannakakis.h) and the Figure 6 enumerator accept.
  bool IsConnected() const;
  bool IsTreeShaped() const;

  /// Variable indices in range, head vars valid.
  Status Validate() const;

  /// "Q(x, y) :- Child(x, y), Lab_a(x)." rendering (reparseable).
  std::string ToString() const;

  /// Rewrites every inverse axis atom R^-1(x, y) as R(y, x), so downstream
  /// code (rewriting, dichotomy) only sees canonical forward/base axes.
  void NormalizeInverseAxes();

 private:
  std::vector<std::string> var_names_;
  std::vector<LabelAtom> label_atoms_;
  std::vector<AxisAtom> axis_atoms_;
  std::vector<int> head_vars_;
};

/// A set of result tuples (arity = head_vars size; Boolean queries use
/// 0-ary tuples: nonempty result == true).
using TupleSet = std::vector<std::vector<NodeId>>;

/// Sorts and deduplicates a tuple set (canonical form for comparisons).
void CanonicalizeTuples(TupleSet* tuples);

}  // namespace cq
}  // namespace treeq

#endif  // TREEQ_CQ_AST_H_
