#include "cq/enumerate.h"

#include <algorithm>
#include <vector>

namespace treeq {
namespace cq {

namespace {

/// Figure 6, iteratively over the DFS variable order x1, ..., xn.
class SolutionEnumerator {
 public:
  SolutionEnumerator(const ConjunctiveQuery& query, const Tree& tree,
                     const TreeOrders& orders, const ReducedQuery& reduced,
                     const ExecContext& exec)
      : query_(query), tree_(tree), orders_(orders), reduced_(reduced),
        exec_(exec) {}

  Result<std::vector<std::vector<NodeId>>> Run(uint64_t limit) {
    const int k = query_.num_vars();
    // Pre-order DFS numbering of the query tree (Figure 6's x1..xn).
    int root = -1;
    std::vector<std::vector<int>> children(k);
    for (int v = 0; v < k; ++v) {
      if (reduced_.parent_var[v] == -1) {
        if (root != -1) {
          return Status::InvalidArgument("reduced query is not connected");
        }
        root = v;
      } else {
        children[reduced_.parent_var[v]].push_back(v);
      }
    }
    TREEQ_CHECK(root != -1);
    dfs_order_.clear();
    std::vector<int> stack = {root};
    while (!stack.empty()) {
      int v = stack.back();
      stack.pop_back();
      dfs_order_.push_back(v);
      for (auto it = children[v].rbegin(); it != children[v].rend(); ++it) {
        stack.push_back(*it);
      }
    }

    theta_.assign(k, kNullNode);
    results_.clear();
    limit_ = limit;
    abort_ = Status::OK();
    EnumerateSatisfactions(0);
    TREEQ_RETURN_IF_ERROR(abort_);
    return std::move(results_);
  }

 private:
  // Figure 6's enumerate_satisfactions(i). The first failed charge lands in
  // abort_ and unwinds the recursion.
  void EnumerateSatisfactions(int i) {
    if (!abort_.ok() || results_.size() >= limit_) return;
    const int var = dfs_order_[i];
    const int parent = reduced_.parent_var[var];
    for (NodeId v = 0;
         v < static_cast<NodeId>(reduced_.candidates[var].universe()); ++v) {
      if (!reduced_.candidates[var].Contains(v)) continue;
      abort_ = exec_.Charge(1);
      if (!abort_.ok()) return;
      if (i != 0 &&
          !AxisHolds(tree_, orders_, reduced_.parent_axis[var],
                     theta_[parent], v)) {
        continue;
      }
      theta_[var] = v;
      if (i == static_cast<int>(dfs_order_.size()) - 1) {
        abort_ = exec_.ChargeMemory(theta_.size() * sizeof(NodeId));
        if (!abort_.ok()) return;
        results_.push_back(theta_);
        if (results_.size() >= limit_) return;
      } else {
        EnumerateSatisfactions(i + 1);
      }
    }
  }

  const ConjunctiveQuery& query_;
  const Tree& tree_;
  const TreeOrders& orders_;
  const ReducedQuery& reduced_;
  const ExecContext& exec_;
  Status abort_;
  std::vector<int> dfs_order_;
  std::vector<NodeId> theta_;
  std::vector<std::vector<NodeId>> results_;
  uint64_t limit_ = 0;
};

}  // namespace

Result<std::vector<std::vector<NodeId>>> EnumerateSolutions(
    const ConjunctiveQuery& query, const Tree& tree, const TreeOrders& orders,
    const ReducedQuery& reduced, uint64_t limit, const ExecContext& exec) {
  if (!reduced.satisfiable) {
    return std::vector<std::vector<NodeId>>{};
  }
  if (static_cast<int>(reduced.parent_var.size()) != query.num_vars()) {
    return Status::InvalidArgument("reduced query does not match the query");
  }
  SolutionEnumerator enumerator(query, tree, orders, reduced, exec);
  return enumerator.Run(limit);
}

Result<TupleSet> EvaluateAcyclic(const ConjunctiveQuery& query,
                                 const Tree& tree, const TreeOrders& orders,
                                 uint64_t limit, const ExecContext& exec,
                                 const LabelIndex* index,
                                 AxisImageMemo* memo) {
  // The reducer is O(|Q| * |D|); charge it as a block before running. The
  // block charge is kept even when the memo serves some semijoin images —
  // it prices the sweep's set algebra, which always runs — so a CQ plan's
  // visit accounting stays deterministic cached or not.
  TREEQ_RETURN_IF_ERROR(exec.Charge(
      1 + static_cast<uint64_t>(tree.num_nodes()) * query.num_vars()));
  TREEQ_ASSIGN_OR_RETURN(ReducedQuery reduced,
                         FullReducer(query, tree, orders, /*root_var=*/-1,
                                     index, memo));
  if (!reduced.satisfiable) return TupleSet{};
  TREEQ_ASSIGN_OR_RETURN(
      std::vector<std::vector<NodeId>> solutions,
      EnumerateSolutions(query, tree, orders, reduced, limit, exec));
  TupleSet tuples;
  tuples.reserve(solutions.size());
  for (const std::vector<NodeId>& solution : solutions) {
    std::vector<NodeId> tuple;
    tuple.reserve(query.head_vars().size());
    for (int h : query.head_vars()) tuple.push_back(solution[h]);
    tuples.push_back(std::move(tuple));
  }
  CanonicalizeTuples(&tuples);
  return tuples;
}

}  // namespace cq
}  // namespace treeq
