#ifndef TREEQ_CQ_DICHOTOMY_H_
#define TREEQ_CQ_DICHOTOMY_H_

#include <optional>
#include <vector>

#include "cq/ast.h"
#include "cq/x_property.h"
#include "tree/document.h"
#include "tree/orders.h"
#include "util/exec_context.h"
#include "util/status.h"

/// \file dichotomy.h
/// The tractability dichotomy for conjunctive queries over trees
/// (Theorem 6.8, [35]): a class CQ[F] of conjunctive queries over an axis
/// set F is polynomial-time iff some total order gives every relation in F
/// the X-underbar property — i.e. iff F fits (after inverse normalization)
/// inside one of
///   tau_1 = { Child+, Child* }                                  (<pre)
///   tau_2 = { Following }                                       (<post)
///   tau_3 = { Child, NextSibling, NextSibling*, NextSibling+ }  (<bflr)
/// and is NP-complete otherwise.

namespace treeq {
namespace cq {

/// How a signature is classified.
enum class SignatureClass {
  kTau1,    // evaluate with the X-property under <pre
  kTau2,    // ... under <post
  kTau3,    // ... under <bflr
  kNpHard,  // no order works: the NP-complete side of Theorem 6.8
};

const char* SignatureClassName(SignatureClass c);

/// Classifies an axis set (inverse axes are normalized first; Self is
/// always allowed).
SignatureClass ClassifySignature(const std::vector<Axis>& axes);

/// The order associated with a tractable class.
std::optional<TreeOrder> OrderForClass(SignatureClass c);

/// Evaluates a Boolean conjunctive query by the dichotomy: X-property
/// evaluation (Theorem 6.5) when the signature is tractable, backtracking
/// search otherwise. `used_tractable_path`, if non-null, reports which side
/// ran. The ExecContext bounds the NP-hard branch (charged per assignment
/// tried) and is checked between stages on the tractable branch.
Result<bool> EvaluateBooleanDichotomy(const ConjunctiveQuery& query,
                                      const Tree& tree,
                                      const TreeOrders& orders,
                                      bool* used_tractable_path = nullptr,
                                      const ExecContext& exec =
                                          ExecContext::Unbounded());

/// Document-taking overload (tree/document.h); thin forwarder.
inline Result<bool> EvaluateBooleanDichotomy(
    const ConjunctiveQuery& query, const Document& doc,
    bool* used_tractable_path = nullptr,
    const ExecContext& exec = ExecContext::Unbounded()) {
  return EvaluateBooleanDichotomy(query, doc.tree(), doc.orders(),
                                  used_tractable_path, exec);
}

}  // namespace cq
}  // namespace treeq

#endif  // TREEQ_CQ_DICHOTOMY_H_
