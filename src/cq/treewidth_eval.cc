#include "cq/treewidth_eval.h"

#include <algorithm>
#include <map>
#include <set>
#include <vector>

namespace treeq {
namespace cq {

namespace {

/// One connected component of the query, with component-local variable
/// indices (0-based) mapped back to the original query's variables.
struct Component {
  std::vector<int> vars;               // component var -> query var
  std::vector<AxisAtom> axis_atoms;    // over component indices
  std::vector<LabelAtom> label_atoms;  // over component indices
};

std::vector<Component> SplitComponents(const ConjunctiveQuery& query) {
  const int k = query.num_vars();
  std::vector<int> comp(k, -1);
  std::vector<std::vector<int>> adj(k);
  for (const AxisAtom& a : query.axis_atoms()) {
    adj[a.var0].push_back(a.var1);
    adj[a.var1].push_back(a.var0);
  }
  int num_components = 0;
  for (int v = 0; v < k; ++v) {
    if (comp[v] != -1) continue;
    std::vector<int> stack = {v};
    comp[v] = num_components;
    while (!stack.empty()) {
      int u = stack.back();
      stack.pop_back();
      for (int w : adj[u]) {
        if (comp[w] == -1) {
          comp[w] = num_components;
          stack.push_back(w);
        }
      }
    }
    ++num_components;
  }
  std::vector<Component> components(num_components);
  std::vector<int> local(k, -1);
  for (int v = 0; v < k; ++v) {
    local[v] = static_cast<int>(components[comp[v]].vars.size());
    components[comp[v]].vars.push_back(v);
  }
  for (const AxisAtom& a : query.axis_atoms()) {
    components[comp[a.var0]].axis_atoms.push_back(
        AxisAtom{a.axis, local[a.var0], local[a.var1]});
  }
  for (const LabelAtom& a : query.label_atoms()) {
    components[comp[a.var]].label_atoms.push_back(
        LabelAtom{a.label, local[a.var]});
  }
  return components;
}

/// The reduced bag relations of one component, plus the decomposition tree.
struct ComponentEval {
  bool satisfiable = false;
  TreeDecomposition decomposition;
  // Per bag: tuples over decomposition.bags[b] (component var order).
  std::vector<std::vector<std::vector<NodeId>>> relations;
};

/// Projection of `tuple` (aligned with `bag`) onto `vars` (a subset).
std::vector<NodeId> Project(const std::vector<int>& bag,
                            const std::vector<NodeId>& tuple,
                            const std::vector<int>& vars) {
  std::vector<NodeId> out;
  out.reserve(vars.size());
  for (int v : vars) {
    auto it = std::find(bag.begin(), bag.end(), v);
    out.push_back(tuple[it - bag.begin()]);
  }
  return out;
}

Result<ComponentEval> EvaluateComponent(const Component& component,
                                        const Tree& tree,
                                        const TreeOrders& orders,
                                        TreewidthEvalStats* stats) {
  const int k = static_cast<int>(component.vars.size());
  const int n = tree.num_nodes();
  ComponentEval eval;

  // 1. Decompose the component's query graph.
  Graph graph(k);
  for (const AxisAtom& a : component.axis_atoms) {
    if (a.var0 != a.var1) graph.AddEdge(a.var0, a.var1);
  }
  eval.decomposition = GreedyDecompose(graph);
  if (stats != nullptr) {
    stats->width = std::max(stats->width, eval.decomposition.Width());
  }
  const int num_bags = static_cast<int>(eval.decomposition.bags.size());

  // Label atoms restrict per-variable domains up front.
  std::vector<std::vector<NodeId>> domain(k);
  for (int v = 0; v < k; ++v) {
    std::vector<std::string> labels;
    for (const LabelAtom& a : component.label_atoms) {
      if (a.var == v) labels.push_back(a.label);
    }
    for (NodeId node = 0; node < n; ++node) {
      bool ok = true;
      for (const std::string& l : labels) ok = ok && tree.HasLabel(node, l);
      if (ok) domain[v].push_back(node);
    }
  }

  // Assign each binary atom to one covering bag; self-loop atoms too.
  std::vector<std::vector<const AxisAtom*>> atoms_of_bag(num_bags);
  for (const AxisAtom& a : component.axis_atoms) {
    bool placed = false;
    for (int b = 0; b < num_bags && !placed; ++b) {
      const std::vector<int>& bag = eval.decomposition.bags[b];
      bool has0 = std::find(bag.begin(), bag.end(), a.var0) != bag.end();
      bool has1 = std::find(bag.begin(), bag.end(), a.var1) != bag.end();
      if (has0 && has1) {
        atoms_of_bag[b].push_back(&a);
        placed = true;
      }
    }
    if (!placed) {
      return Status::Internal("decomposition does not cover an atom");
    }
  }

  // 2. Materialize bag relations: |A|^{bag size} candidates filtered by the
  // bag's atoms (Theorem 4.1's dominant term).
  eval.relations.resize(num_bags);
  for (int b = 0; b < num_bags; ++b) {
    const std::vector<int>& bag = eval.decomposition.bags[b];
    std::vector<NodeId> tuple(bag.size(), kNullNode);
    // Iterative odometer over the restricted domains.
    std::vector<size_t> idx(bag.size(), 0);
    bool empty_domain = false;
    for (int v : bag) empty_domain = empty_domain || domain[v].empty();
    if (!empty_domain) {
      for (;;) {
        for (size_t i = 0; i < bag.size(); ++i) {
          tuple[i] = domain[bag[i]][idx[i]];
        }
        if (stats != nullptr) ++stats->candidate_checks;
        bool ok = true;
        for (const AxisAtom* a : atoms_of_bag[b]) {
          NodeId u = tuple[std::find(bag.begin(), bag.end(), a->var0) -
                           bag.begin()];
          NodeId v = tuple[std::find(bag.begin(), bag.end(), a->var1) -
                           bag.begin()];
          if (!AxisHolds(tree, orders, a->axis, u, v)) {
            ok = false;
            break;
          }
        }
        if (ok) eval.relations[b].push_back(tuple);
        // Advance the odometer.
        size_t pos = 0;
        while (pos < bag.size() && ++idx[pos] == domain[bag[pos]].size()) {
          idx[pos] = 0;
          ++pos;
        }
        if (pos == bag.size()) break;
      }
    }
    if (stats != nullptr) {
      stats->bag_tuples += eval.relations[b].size();
    }
  }

  // 3. Yannakakis over the decomposition tree: children before parents.
  // Bag parents come from GreedyDecompose; order bags so children precede
  // parents (the parent always has a later-eliminated pivot, but be safe
  // and topo-sort).
  std::vector<int> order;
  {
    std::vector<std::vector<int>> children(num_bags);
    std::vector<int> roots;
    for (int b = 0; b < num_bags; ++b) {
      int p = eval.decomposition.parent[b];
      if (p == -1) {
        roots.push_back(b);
      } else {
        children[p].push_back(b);
      }
    }
    for (int root : roots) {
      std::vector<int> stack = {root};
      std::vector<int> preorder;
      while (!stack.empty()) {
        int b = stack.back();
        stack.pop_back();
        preorder.push_back(b);
        for (int c : children[b]) stack.push_back(c);
      }
      order.insert(order.end(), preorder.rbegin(), preorder.rend());
    }
  }
  auto semijoin = [&](int from, int to) {
    const std::vector<int>& from_bag = eval.decomposition.bags[from];
    const std::vector<int>& to_bag = eval.decomposition.bags[to];
    std::vector<int> shared;
    for (int v : from_bag) {
      if (std::find(to_bag.begin(), to_bag.end(), v) != to_bag.end()) {
        shared.push_back(v);
      }
    }
    std::set<std::vector<NodeId>> keys;
    for (const auto& t : eval.relations[from]) {
      keys.insert(Project(from_bag, t, shared));
    }
    auto& rel = eval.relations[to];
    rel.erase(std::remove_if(rel.begin(), rel.end(),
                             [&](const std::vector<NodeId>& t) {
                               return !keys.count(Project(to_bag, t, shared));
                             }),
              rel.end());
  };
  // Bottom-up: children reduce parents.
  for (int b : order) {
    int p = eval.decomposition.parent[b];
    if (p != -1) semijoin(b, p);
  }
  // Top-down: parents reduce children.
  for (auto it = order.rbegin(); it != order.rend(); ++it) {
    int p = eval.decomposition.parent[*it];
    if (p != -1) semijoin(p, *it);
  }
  eval.satisfiable = true;
  for (const auto& rel : eval.relations) {
    if (rel.empty()) eval.satisfiable = false;
  }
  return eval;
}

/// Enumerates all solutions of a reduced component by joining bag
/// relations along the decomposition tree; appends full per-component
/// assignments (indexed by component var).
void JoinComponent(const ComponentEval& eval, size_t order_index,
                   const std::vector<int>& order,
                   std::vector<NodeId>* assignment,
                   std::vector<std::vector<NodeId>>* out) {
  if (order_index == order.size()) {
    out->push_back(*assignment);
    return;
  }
  int b = order[order_index];
  const std::vector<int>& bag = eval.decomposition.bags[b];
  for (const auto& tuple : eval.relations[b]) {
    bool compatible = true;
    std::vector<int> touched;
    for (size_t i = 0; i < bag.size(); ++i) {
      NodeId assigned = (*assignment)[bag[i]];
      if (assigned == kNullNode) {
        (*assignment)[bag[i]] = tuple[i];
        touched.push_back(bag[i]);
      } else if (assigned != tuple[i]) {
        compatible = false;
        break;
      }
    }
    if (compatible) {
      JoinComponent(eval, order_index + 1, order, assignment, out);
    }
    for (int v : touched) (*assignment)[v] = kNullNode;
  }
}

}  // namespace

Result<bool> EvaluateBooleanTreewidth(const ConjunctiveQuery& query,
                                      const Tree& tree,
                                      const TreeOrders& orders,
                                      TreewidthEvalStats* stats) {
  TREEQ_RETURN_IF_ERROR(query.Validate());
  for (const Component& component : SplitComponents(query)) {
    TREEQ_ASSIGN_OR_RETURN(ComponentEval eval,
                           EvaluateComponent(component, tree, orders, stats));
    if (!eval.satisfiable) return false;
  }
  return true;
}

Result<TupleSet> EvaluateTreewidth(const ConjunctiveQuery& query,
                                   const Tree& tree, const TreeOrders& orders,
                                   TreewidthEvalStats* stats) {
  TREEQ_RETURN_IF_ERROR(query.Validate());
  std::vector<Component> components = SplitComponents(query);

  // Per component: the set of head-var sub-tuples it contributes.
  struct ComponentHeads {
    std::vector<size_t> head_positions;  // positions in query.head_vars()
    std::vector<std::vector<NodeId>> tuples;
  };
  std::vector<ComponentHeads> parts;
  for (const Component& component : components) {
    TREEQ_ASSIGN_OR_RETURN(ComponentEval eval,
                           EvaluateComponent(component, tree, orders, stats));
    if (!eval.satisfiable) return TupleSet{};
    ComponentHeads part;
    std::map<int, int> local_of;  // query var -> component var
    for (size_t i = 0; i < component.vars.size(); ++i) {
      local_of[component.vars[i]] = static_cast<int>(i);
    }
    for (size_t h = 0; h < query.head_vars().size(); ++h) {
      if (local_of.count(query.head_vars()[h])) {
        part.head_positions.push_back(h);
      }
    }
    // Join the bags and project onto this component's head vars.
    std::vector<int> order(eval.decomposition.bags.size());
    for (size_t i = 0; i < order.size(); ++i) order[i] = static_cast<int>(i);
    std::vector<NodeId> assignment(component.vars.size(), kNullNode);
    std::vector<std::vector<NodeId>> solutions;
    JoinComponent(eval, 0, order, &assignment, &solutions);
    std::set<std::vector<NodeId>> dedup;
    for (const auto& sol : solutions) {
      std::vector<NodeId> head;
      for (size_t h : part.head_positions) {
        head.push_back(sol[local_of[query.head_vars()[h]]]);
      }
      dedup.insert(std::move(head));
    }
    part.tuples.assign(dedup.begin(), dedup.end());
    parts.push_back(std::move(part));
  }

  // Cross product across components, scattered into head positions.
  TupleSet result;
  std::vector<NodeId> tuple(query.head_vars().size(), kNullNode);
  std::vector<size_t> pick(parts.size(), 0);
  for (;;) {
    for (size_t c = 0; c < parts.size(); ++c) {
      const auto& part = parts[c];
      const auto& sub = part.tuples[pick[c]];
      for (size_t i = 0; i < part.head_positions.size(); ++i) {
        tuple[part.head_positions[i]] = sub[i];
      }
    }
    result.push_back(tuple);
    size_t pos = 0;
    while (pos < parts.size() && ++pick[pos] == parts[pos].tuples.size()) {
      pick[pos] = 0;
      ++pos;
    }
    if (pos == parts.size()) break;
  }
  CanonicalizeTuples(&result);
  return result;
}

}  // namespace cq
}  // namespace treeq
