#ifndef TREEQ_CQ_PAR_TWIG_H_
#define TREEQ_CQ_PAR_TWIG_H_

#include "cq/twig_join.h"
#include "tree/document.h"
#include "util/exec_context.h"
#include "util/status.h"
#include "util/task_runner.h"

/// \file par_twig.h
/// Partition-parallel TwigStack (treeq::par): one TwigStack instance per
/// chunk of the *root* pattern node's label stream, run concurrently.
///
/// Every match assigns the root pattern node an element of the root
/// stream, so chunking that stream into K contiguous document-order ranges
/// partitions the match set disjointly by root. A chunk's matches live
/// entirely inside its roots' subtrees: all matched elements have pre in
/// [root.pre, root.end), so each non-root stream can be windowed to
/// [first chunk root's pre, max chunk root's subtree end) — a binary
/// search per stream, no copying of out-of-window items. Running the
/// unchanged serial TwigStack per chunk and concatenating (then
/// re-canonicalizing once) yields exactly the serial tuple set.
///
/// Budgets and cancellation follow the par kernel contract: each chunk
/// runs under a forked ExecContext share, parent cancel fans out, and the
/// parent absorbs child spend at the join. TwigStack charges per stream
/// advance / stack push, so cancellation stops chunk tasks mid-stream.

namespace treeq {
namespace cq {

/// All matches of `pattern` against `doc`, equal as a canonical tuple set
/// to TwigStackJoin(pattern, doc, ...). Falls back to the serial join when
/// `options.parallelism` < 2, no runner is given, or the root stream is
/// smaller than `options.min_context`. `stats` sums child work counters;
/// `par_stats` accumulates fork attribution.
Result<TupleSet> ParTwigStackJoin(const TwigPattern& pattern,
                                  const Document& doc,
                                  const par::ParOptions& options,
                                  const ExecContext& exec =
                                      ExecContext::Unbounded(),
                                  TwigStats* stats = nullptr,
                                  par::ParStats* par_stats = nullptr);

}  // namespace cq
}  // namespace treeq

#endif  // TREEQ_CQ_PAR_TWIG_H_
