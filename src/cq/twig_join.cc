#include "cq/twig_join.h"

#include <algorithm>
#include <map>
#include <set>

#include "obs/obs.h"
#include "storage/structural_join.h"

namespace treeq {
namespace cq {

Status TwigPattern::Validate() const {
  if (nodes.empty()) return Status::InvalidArgument("empty twig pattern");
  if (nodes[0].parent != -1) {
    return Status::InvalidArgument("twig node 0 must be the root");
  }
  for (size_t i = 1; i < nodes.size(); ++i) {
    if (nodes[i].parent < 0 || nodes[i].parent >= static_cast<int>(i)) {
      return Status::InvalidArgument(
          "twig parents must precede their children");
    }
    if (nodes[i].edge != Axis::kChild && nodes[i].edge != Axis::kDescendant) {
      return Status::InvalidArgument(
          "twig edges must be child or descendant");
    }
  }
  return Status::OK();
}

std::vector<int> TwigPattern::Children(int node) const {
  std::vector<int> out;
  for (size_t i = 0; i < nodes.size(); ++i) {
    if (nodes[i].parent == node) out.push_back(static_cast<int>(i));
  }
  return out;
}

std::vector<int> TwigPattern::Leaves() const {
  std::vector<char> has_child(nodes.size(), 0);
  for (const TwigPatternNode& n : nodes) {
    if (n.parent >= 0) has_child[n.parent] = 1;
  }
  std::vector<int> out;
  for (size_t i = 0; i < nodes.size(); ++i) {
    if (!has_child[i]) out.push_back(static_cast<int>(i));
  }
  return out;
}

bool TwigPattern::IsPath() const { return Leaves().size() == 1; }

ConjunctiveQuery TwigPattern::ToConjunctiveQuery() const {
  ConjunctiveQuery query;
  for (size_t i = 0; i < nodes.size(); ++i) {
    int v = query.AddVar("q" + std::to_string(i));
    query.AddLabelAtom(nodes[i].label, v);
    query.AddHeadVar(v);
  }
  for (size_t i = 1; i < nodes.size(); ++i) {
    query.AddAxisAtom(nodes[i].edge, nodes[i].parent, static_cast<int>(i));
  }
  return query;
}

std::string TwigPattern::ToString() const {
  std::string out;
  for (size_t i = 0; i < nodes.size(); ++i) {
    if (i > 0) out += " ";
    out += std::to_string(i) + ":" + nodes[i].label;
    if (nodes[i].parent >= 0) {
      out += (nodes[i].edge == Axis::kChild ? "/of:" : "//of:") +
             std::to_string(nodes[i].parent);
    }
  }
  return out;
}

namespace {

constexpr int kInf = INT32_MAX;

/// TwigStack state: per pattern node a document-ordered stream of matching
/// elements and a stack of (element, pointer into the parent's stack).
class TwigStackRunner {
 public:
  TwigStackRunner(const TwigPattern& pattern, const Tree& tree,
                  const LabelIndex& index, TwigStats* stats,
                  const ExecContext& exec)
      : TwigStackRunner(pattern, StreamsFromIndex(pattern, tree, index),
                        stats, exec) {}

  /// Explicit-streams variant: `streams` has one document-ordered item
  /// list per pattern node (the parallel twig join passes windowed
  /// sub-streams here).
  TwigStackRunner(const TwigPattern& pattern,
                  std::vector<const std::vector<JoinItem>*> streams,
                  TwigStats* stats, const ExecContext& exec)
      : pattern_(pattern),
        stats_(stats),
        exec_(exec),
        streams_(std::move(streams)) {
    const int m = static_cast<int>(pattern.nodes.size());
    children_.resize(m);
    for (int i = 1; i < m; ++i) {
      children_[pattern.nodes[i].parent].push_back(i);
    }
    cursor_.assign(m, 0);
    stacks_.resize(m);
  }

  /// Per-pattern-node streams borrowed from the label index: no arena scan
  /// and no sort per node.
  static std::vector<const std::vector<JoinItem>*> StreamsFromIndex(
      const TwigPattern& pattern, const Tree& tree, const LabelIndex& index) {
    std::vector<const std::vector<JoinItem>*> streams;
    streams.reserve(pattern.nodes.size());
    for (const TwigPatternNode& node : pattern.nodes) {
      LabelId label = tree.label_table().Lookup(node.label);
      streams.push_back(&index.Items(label));
    }
    return streams;
  }

  Result<TupleSet> Run() {
    const int m = static_cast<int>(pattern_.nodes.size());
    for (;;) {
      // One charge per main-loop iteration == one stream advance; GetNext
      // skips are charged where they happen.
      TREEQ_RETURN_IF_ERROR(exec_.Charge(1));
      int q = GetNext(0);
      if (!abort_.ok()) return abort_;
      if (Exhausted(q)) {
        // getNext hit a branch whose stream is exhausted: no *new* matches
        // can involve that pattern node, but other root-to-leaf legs may
        // still owe path solutions to the final merge (they combine with
        // already-emitted paths of the dead leg). Continue with the
        // globally smallest remaining stream head, preserving the
        // document-order push discipline.
        q = -1;
        for (int i = 0; i < m; ++i) {
          if (!Exhausted(i) && (q == -1 || NextL(i) < NextL(q))) q = i;
        }
        if (q == -1) break;  // all streams consumed
      }
      if (q != 0) CleanStack(pattern_.nodes[q].parent, NextL(q));
      bool pushable = (q == 0) || !stacks_[pattern_.nodes[q].parent].empty();
      if (pushable) {
        CleanStack(q, NextL(q));
        Push(q);
        if (children_[q].empty()) {
          EmitPathSolutions(q);
          if (!abort_.ok()) return abort_;
          stacks_[q].pop_back();
        }
      }
      ++cursor_[q];  // advance the stream either way
    }
    TupleSet merged = MergePathSolutions();
    TREEQ_RETURN_IF_ERROR(abort_);
    return merged;
  }

 private:
  struct StackEntry {
    JoinItem item;
    int parent_top;  // index of the parent stack's top at push time (-1)
  };

  bool Exhausted(int q) const {
    return cursor_[q] >= streams_[q]->size();
  }
  const JoinItem& Head(int q) const { return (*streams_[q])[cursor_[q]]; }
  int NextL(int q) const { return Exhausted(q) ? kInf : Head(q).pre; }
  int NextEnd(int q) const { return Exhausted(q) ? kInf : Head(q).end; }

  // The getNext stream-alignment routine of [13].
  int GetNext(int q) {
    if (children_[q].empty()) return q;
    int nmin = -1, nmax = -1;
    for (int qi : children_[q]) {
      int ni = GetNext(qi);
      if (ni != qi) return ni;
      if (nmin == -1 || NextL(qi) < NextL(nmin)) nmin = qi;
      if (nmax == -1 || NextL(qi) > NextL(nmax)) nmax = qi;
    }
    // Skip q-elements whose subtree ends before the farthest child head:
    // they cannot cover all child branches.
    while (!Exhausted(q) && NextEnd(q) <= NextL(nmax)) {
      abort_ = exec_.Charge(1);
      if (!abort_.ok()) return q;
      TREEQ_OBS_INC("cq.twig.skipped_elements");
      ++cursor_[q];
    }
    if (NextL(q) < NextL(nmin)) return q;
    return nmin;
  }

  // Pops stack entries that are not ancestors of the element at pre rank
  // `pre`.
  void CleanStack(int q, int pre) {
    while (!stacks_[q].empty() && stacks_[q].back().item.end <= pre) {
      stacks_[q].pop_back();
    }
  }

  void Push(int q) {
    int parent_top = -1;
    if (q != 0) {
      parent_top =
          static_cast<int>(stacks_[pattern_.nodes[q].parent].size()) - 1;
    }
    stacks_[q].push_back(StackEntry{Head(q), parent_top});
    TREEQ_OBS_INC("cq.twig.stack_pushes");
    if (stats_ != nullptr) ++stats_->intermediate_results;
  }

  // Emits every root-to-leaf path solution ending at the just-pushed leaf
  // element (stack entries below a linked position are all ancestors, so no
  // backtracking is needed). Child-edges are filtered by depth.
  void EmitPathSolutions(int leaf) {
    // Pattern nodes on the path, leaf -> root.
    std::vector<int> path;
    for (int v = leaf; v != -1; v = pattern_.nodes[v].parent) {
      path.push_back(v);
    }
    std::vector<NodeId> partial(path.size(), kNullNode);
    EmitRec(path, 0, static_cast<int>(stacks_[leaf].size()) - 1, &partial);
  }

  void EmitRec(const std::vector<int>& path, size_t depth_in_path,
               int max_stack_index, std::vector<NodeId>* partial) {
    if (!abort_.ok()) return;
    const int q = path[depth_in_path];
    // The leaf position uses only the just-pushed element; ancestor
    // positions range over the stack up to the recorded parent link.
    const int min_stack_index = depth_in_path == 0 ? max_stack_index : 0;
    for (int s = max_stack_index; s >= min_stack_index; --s) {
      abort_ = exec_.Charge(1);
      if (!abort_.ok()) return;
      const StackEntry& entry = stacks_[q][s];
      if (depth_in_path > 0) {
        // entry must relate to the previously chosen (lower) element per
        // the pattern edge.
        const int child_q = path[depth_in_path - 1];
        const JoinItem& child_item = chosen_items_[child_q];
        if (pattern_.nodes[child_q].edge == Axis::kChild &&
            entry.item.depth != child_item.depth - 1) {
          continue;
        }
        // Ancestorship holds by the stack discipline; assert cheaply.
        if (!(entry.item.pre < child_item.pre &&
              child_item.pre < entry.item.end)) {
          continue;
        }
      }
      (*partial)[depth_in_path] = entry.item.node;
      chosen_items_[q] = entry.item;
      if (depth_in_path + 1 == path.size()) {
        // Record the solution keyed by the root-to-leaf pattern path.
        abort_ = exec_.ChargeMemory(path.size() * sizeof(NodeId));
        if (!abort_.ok()) return;
        std::vector<NodeId> solution(path.size());
        for (size_t i = 0; i < path.size(); ++i) {
          solution[path.size() - 1 - i] = (*partial)[i];  // root first
        }
        path_solutions_[path.front()].push_back(std::move(solution));
        TREEQ_OBS_INC("cq.twig.path_solutions");
        if (stats_ != nullptr) ++stats_->path_solutions;
      } else {
        // path[depth+1] is q's pattern parent; its admissible stack range
        // is bounded by the link recorded when `entry` was pushed.
        EmitRec(path, depth_in_path + 1, entry.parent_top, partial);
      }
    }
  }

  TupleSet MergePathSolutions() {
    // Root-to-leaf pattern paths, one per leaf, in leaf order.
    std::vector<std::vector<int>> paths;
    for (int leaf : pattern_.Leaves()) {
      std::vector<int> path;
      for (int v = leaf; v != -1; v = pattern_.nodes[v].parent) {
        path.push_back(v);
      }
      std::reverse(path.begin(), path.end());
      paths.push_back(std::move(path));
    }
    TupleSet result;
    std::vector<NodeId> assignment(pattern_.nodes.size(), kNullNode);
    MergeRec(paths, 0, &assignment, &result);
    CanonicalizeTuples(&result);
    return result;
  }

  void MergeRec(const std::vector<std::vector<int>>& paths, size_t index,
                std::vector<NodeId>* assignment, TupleSet* result) {
    if (!abort_.ok()) return;
    if (index == paths.size()) {
      abort_ = exec_.ChargeMemory(assignment->size() * sizeof(NodeId));
      if (!abort_.ok()) return;
      result->push_back(*assignment);
      return;
    }
    const std::vector<int>& path = paths[index];
    int leaf = path.back();
    for (const std::vector<NodeId>& solution : path_solutions_[leaf]) {
      abort_ = exec_.Charge(1);
      if (!abort_.ok()) return;
      bool compatible = true;
      for (size_t i = 0; i < path.size(); ++i) {
        NodeId assigned = (*assignment)[path[i]];
        if (assigned != kNullNode && assigned != solution[i]) {
          compatible = false;
          break;
        }
      }
      if (!compatible) continue;
      std::vector<int> touched;
      for (size_t i = 0; i < path.size(); ++i) {
        if ((*assignment)[path[i]] == kNullNode) {
          (*assignment)[path[i]] = solution[i];
          touched.push_back(path[i]);
        }
      }
      MergeRec(paths, index + 1, assignment, result);
      for (int v : touched) (*assignment)[v] = kNullNode;
    }
  }

  const TwigPattern& pattern_;
  TwigStats* stats_;
  const ExecContext& exec_;
  Status abort_;
  std::vector<std::vector<int>> children_;
  std::vector<const std::vector<JoinItem>*> streams_;
  std::vector<size_t> cursor_;
  std::vector<std::vector<StackEntry>> stacks_;
  std::map<int, JoinItem> chosen_items_;
  // Path solutions keyed by the leaf pattern node, root-first tuples.
  std::map<int, std::vector<std::vector<NodeId>>> path_solutions_;
};

}  // namespace

Result<TupleSet> TwigStackJoin(const TwigPattern& pattern, const Tree& tree,
                               const TreeOrders& /*orders*/,
                               const LabelIndex& index, TwigStats* stats,
                               const ExecContext& exec) {
  TREEQ_RETURN_IF_ERROR(pattern.Validate());
  TREEQ_OBS_SPAN("cq.twig.twigstack");
  TwigStackRunner runner(pattern, tree, index, stats, exec);
  TREEQ_ASSIGN_OR_RETURN(TupleSet result, runner.Run());
  TREEQ_OBS_COUNT("cq.twig.output_tuples", result.size());
  return result;
}

Result<TupleSet> TwigStackJoinStreams(
    const TwigPattern& pattern,
    const std::vector<const std::vector<JoinItem>*>& streams,
    TwigStats* stats, const ExecContext& exec) {
  TREEQ_RETURN_IF_ERROR(pattern.Validate());
  if (streams.size() != pattern.nodes.size()) {
    return Status::InvalidArgument(
        "TwigStackJoinStreams needs one stream per pattern node");
  }
  TREEQ_OBS_SPAN("cq.twig.twigstack");
  TwigStackRunner runner(pattern, streams, stats, exec);
  TREEQ_ASSIGN_OR_RETURN(TupleSet result, runner.Run());
  TREEQ_OBS_COUNT("cq.twig.output_tuples", result.size());
  return result;
}

Result<TupleSet> TwigStackJoin(const TwigPattern& pattern, const Tree& tree,
                               const TreeOrders& orders, TwigStats* stats,
                               const ExecContext& exec) {
  LabelIndex index(tree, orders);
  return TwigStackJoin(pattern, tree, orders, index, stats, exec);
}

Result<TupleSet> TwigStackJoin(const TwigPattern& pattern,
                               const Document& doc, TwigStats* stats,
                               const ExecContext& exec) {
  return TwigStackJoin(pattern, doc.tree(), doc.orders(), doc.label_index(),
                       stats, exec);
}

Result<TupleSet> TwigByStructuralJoins(const TwigPattern& pattern,
                                       const Tree& tree,
                                       const TreeOrders& orders,
                                       const LabelIndex& index,
                                       TwigStats* stats,
                                       const ExecContext& exec) {
  TREEQ_RETURN_IF_ERROR(pattern.Validate());
  TREEQ_OBS_SPAN("cq.twig.structural_joins");
  const int m = static_cast<int>(pattern.nodes.size());

  // Partial matches per pattern node, bottom-up: tuples over the pattern
  // subtree rooted there (variables in pattern-node order, kNullNode for
  // pattern nodes outside the subtree).
  std::vector<TupleSet> partial(m);
  for (int q = m - 1; q >= 0; --q) {
    LabelId label = tree.label_table().Lookup(pattern.nodes[q].label);
    const std::vector<JoinItem>& self_items = index.Items(label);
    // Start with the node's own matches.
    TREEQ_RETURN_IF_ERROR(exec.Charge(1 + self_items.size()));
    TREEQ_RETURN_IF_ERROR(
        exec.ChargeMemory(self_items.size() * m * sizeof(NodeId)));
    TupleSet tuples;
    for (const JoinItem& item : self_items) {
      std::vector<NodeId> tuple(m, kNullNode);
      tuple[q] = item.node;
      tuples.push_back(std::move(tuple));
    }
    // Join in each child's partial result via a binary structural join.
    for (int c = q + 1; c < m; ++c) {
      if (pattern.nodes[c].parent != q) continue;
      // Structural join between q's matches and c's matches.
      std::vector<NodeId> c_nodes;
      for (const std::vector<NodeId>& t : partial[c]) c_nodes.push_back(t[c]);
      std::sort(c_nodes.begin(), c_nodes.end());
      c_nodes.erase(std::unique(c_nodes.begin(), c_nodes.end()),
                    c_nodes.end());
      std::vector<JoinItem> c_items = MakeJoinItems(orders, c_nodes);
      std::vector<std::pair<NodeId, NodeId>> edge_pairs = StackTreeJoin(
          self_items, c_items, pattern.nodes[c].edge == Axis::kChild);
      TREEQ_OBS_COUNT("cq.twig.candidate_pairs", edge_pairs.size());
      if (stats != nullptr) stats->intermediate_results += edge_pairs.size();
      TREEQ_RETURN_IF_ERROR(exec.Charge(1 + edge_pairs.size()));
      // Hash child partials by the c-node.
      std::map<NodeId, std::vector<const std::vector<NodeId>*>> by_c;
      for (const std::vector<NodeId>& t : partial[c]) {
        by_c[t[c]].push_back(&t);
      }
      std::map<NodeId, std::vector<NodeId>> c_partners;
      for (const auto& [a, d] : edge_pairs) c_partners[a].push_back(d);
      TupleSet joined;
      for (const std::vector<NodeId>& t : tuples) {
        auto it = c_partners.find(t[q]);
        if (it == c_partners.end()) continue;
        for (NodeId d : it->second) {
          for (const std::vector<NodeId>* ct : by_c[d]) {
            std::vector<NodeId> merged = t;
            for (int i = 0; i < m; ++i) {
              if ((*ct)[i] != kNullNode) merged[i] = (*ct)[i];
            }
            joined.push_back(std::move(merged));
          }
        }
      }
      tuples = std::move(joined);
      TREEQ_OBS_COUNT("cq.twig.intermediate_tuples", tuples.size());
      if (stats != nullptr) stats->intermediate_results += tuples.size();
      // The joined tuple set is the memory hazard of the binary-join plan:
      // charge it so skewed documents trip ResourceExhausted, not the OOM
      // killer.
      TREEQ_RETURN_IF_ERROR(exec.Charge(1 + tuples.size()));
      TREEQ_RETURN_IF_ERROR(
          exec.ChargeMemory(tuples.size() * m * sizeof(NodeId)));
    }
    partial[q] = std::move(tuples);
  }
  TupleSet result = std::move(partial[0]);
  CanonicalizeTuples(&result);
  return result;
}

Result<TupleSet> TwigByStructuralJoins(const TwigPattern& pattern,
                                       const Tree& tree,
                                       const TreeOrders& orders,
                                       TwigStats* stats,
                                       const ExecContext& exec) {
  LabelIndex index(tree, orders);
  return TwigByStructuralJoins(pattern, tree, orders, index, stats, exec);
}

Result<TupleSet> TwigByStructuralJoins(const TwigPattern& pattern,
                                       const Document& doc,
                                       TwigStats* stats,
                                       const ExecContext& exec) {
  return TwigByStructuralJoins(pattern, doc.tree(), doc.orders(),
                               doc.label_index(), stats, exec);
}

}  // namespace cq
}  // namespace treeq
