#include "cq/ast.h"

#include <algorithm>
#include <set>

namespace treeq {
namespace cq {

int ConjunctiveQuery::AddVar(std::string name) {
  var_names_.push_back(std::move(name));
  return num_vars() - 1;
}

int ConjunctiveQuery::VarByName(const std::string& name) {
  for (int i = 0; i < num_vars(); ++i) {
    if (var_names_[i] == name) return i;
  }
  return AddVar(name);
}

void ConjunctiveQuery::AddLabelAtom(std::string label, int var) {
  label_atoms_.push_back(LabelAtom{std::move(label), var});
}

void ConjunctiveQuery::AddAxisAtom(Axis axis, int var0, int var1) {
  axis_atoms_.push_back(AxisAtom{axis, var0, var1});
}

std::vector<Axis> ConjunctiveQuery::AxesUsed() const {
  std::set<Axis> seen;
  std::vector<Axis> out;
  for (const AxisAtom& a : axis_atoms_) {
    if (seen.insert(a.axis).second) out.push_back(a.axis);
  }
  return out;
}

bool ConjunctiveQuery::IsConnected() const {
  if (num_vars() == 0) return true;
  std::vector<std::vector<int>> adj(num_vars());
  for (const AxisAtom& a : axis_atoms_) {
    adj[a.var0].push_back(a.var1);
    adj[a.var1].push_back(a.var0);
  }
  std::vector<char> seen(num_vars(), 0);
  std::vector<int> stack = {0};
  seen[0] = 1;
  int count = 1;
  while (!stack.empty()) {
    int v = stack.back();
    stack.pop_back();
    for (int w : adj[v]) {
      if (!seen[w]) {
        seen[w] = 1;
        ++count;
        stack.push_back(w);
      }
    }
  }
  return count == num_vars();
}

bool ConjunctiveQuery::IsTreeShaped() const {
  if (!IsConnected()) return false;
  std::set<std::pair<int, int>> edges;
  for (const AxisAtom& a : axis_atoms_) {
    if (a.var0 == a.var1) return false;
    edges.insert({std::min(a.var0, a.var1), std::max(a.var0, a.var1)});
    // Parallel atoms over the same variable pair are disallowed.
  }
  if (static_cast<int>(axis_atoms_.size()) != static_cast<int>(edges.size())) {
    return false;
  }
  return static_cast<int>(edges.size()) == num_vars() - 1;
}

Status ConjunctiveQuery::Validate() const {
  if (num_vars() == 0) {
    return Status::InvalidArgument("conjunctive query has no variables");
  }
  for (const LabelAtom& a : label_atoms_) {
    if (a.var < 0 || a.var >= num_vars()) {
      return Status::InvalidArgument("label atom variable out of range");
    }
  }
  for (const AxisAtom& a : axis_atoms_) {
    if (a.var0 < 0 || a.var0 >= num_vars() || a.var1 < 0 ||
        a.var1 >= num_vars()) {
      return Status::InvalidArgument("axis atom variable out of range");
    }
  }
  for (int h : head_vars_) {
    if (h < 0 || h >= num_vars()) {
      return Status::InvalidArgument("head variable out of range");
    }
  }
  return Status::OK();
}

std::string ConjunctiveQuery::ToString() const {
  std::string out = "Q(";
  for (size_t i = 0; i < head_vars_.size(); ++i) {
    if (i > 0) out += ", ";
    out += var_names_[head_vars_[i]];
  }
  out += ") :- ";
  bool first = true;
  for (const AxisAtom& a : axis_atoms_) {
    if (!first) out += ", ";
    out += std::string(AxisName(a.axis)) + "(" + var_names_[a.var0] + ", " +
           var_names_[a.var1] + ")";
    first = false;
  }
  for (const LabelAtom& a : label_atoms_) {
    if (!first) out += ", ";
    out += "Lab_" + a.label + "(" + var_names_[a.var] + ")";
    first = false;
  }
  if (first) out += "true";
  out += ".";
  return out;
}

void ConjunctiveQuery::NormalizeInverseAxes() {
  // Canonical representatives: the forward/base member of each inverse pair.
  for (AxisAtom& a : axis_atoms_) {
    switch (a.axis) {
      case Axis::kParent:
      case Axis::kAncestor:
      case Axis::kAncestorOrSelf:
      case Axis::kPrevSibling:
      case Axis::kPrecedingSibling:
      case Axis::kPrecedingSiblingOrSelf:
      case Axis::kPreceding:
      case Axis::kFirstChildInv:
        a.axis = InverseAxis(a.axis);
        std::swap(a.var0, a.var1);
        break;
      default:
        break;
    }
  }
}

void CanonicalizeTuples(TupleSet* tuples) {
  std::sort(tuples->begin(), tuples->end());
  tuples->erase(std::unique(tuples->begin(), tuples->end()), tuples->end());
}

}  // namespace cq
}  // namespace treeq
