#ifndef TREEQ_CQ_NAIVE_H_
#define TREEQ_CQ_NAIVE_H_

#include <cstdint>

#include "cq/ast.h"
#include "tree/orders.h"
#include "util/exec_context.h"
#include "util/status.h"

/// \file naive.h
/// Backtracking evaluation of arbitrary conjunctive queries on trees — the
/// general case, NP-complete in combined complexity (Section 6 /
/// Theorem 6.8's hard side). Used as the test oracle and as the baseline
/// the tractable algorithms are benchmarked against.

namespace treeq {
namespace cq {

/// Counts search-tree nodes so benches can report work performed.
struct NaiveCqStats {
  uint64_t assignments_tried = 0;
};

/// All result tuples (deduplicated, sorted). For Boolean queries, a
/// singleton {{}} if satisfiable and {} otherwise. `budget` bounds the
/// number of assignments tried (ResourceExhausted when exceeded). The
/// ExecContext is charged one unit per assignment tried, so deadlines and
/// cancellation abort the NP-hard search cooperatively.
Result<TupleSet> NaiveEvaluateCq(const ConjunctiveQuery& query,
                                 const Tree& tree, const TreeOrders& orders,
                                 uint64_t budget = UINT64_MAX,
                                 NaiveCqStats* stats = nullptr,
                                 const ExecContext& exec =
                                     ExecContext::Unbounded());

/// Boolean satisfiability only (stops at the first witness).
Result<bool> NaiveSatisfiableCq(const ConjunctiveQuery& query,
                                const Tree& tree, const TreeOrders& orders,
                                uint64_t budget = UINT64_MAX,
                                NaiveCqStats* stats = nullptr,
                                const ExecContext& exec =
                                    ExecContext::Unbounded());

}  // namespace cq
}  // namespace treeq

#endif  // TREEQ_CQ_NAIVE_H_
