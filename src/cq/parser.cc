#include "cq/parser.h"

#include <cctype>
#include <string>

namespace treeq {
namespace cq {
namespace {

class CqParser {
 public:
  explicit CqParser(std::string_view input) : input_(input) {}

  Result<ConjunctiveQuery> Parse() {
    ConjunctiveQuery query;
    Skip();
    TREEQ_ASSIGN_OR_RETURN(std::string head, ParseName());
    (void)head;  // the head predicate name is decorative
    TREEQ_RETURN_IF_ERROR(Expect('('));
    Skip();
    if (Peek() != ')') {
      for (;;) {
        TREEQ_ASSIGN_OR_RETURN(std::string v, ParseName());
        query.AddHeadVar(query.VarByName(v));
        Skip();
        if (Peek() == ',') {
          ++pos_;
          continue;
        }
        break;
      }
    }
    TREEQ_RETURN_IF_ERROR(Expect(')'));
    Skip();
    if (input_.substr(pos_).starts_with(":-") ||
        input_.substr(pos_).starts_with("<-")) {
      pos_ += 2;
    } else {
      return Error("expected ':-'");
    }
    for (;;) {
      Skip();
      TREEQ_ASSIGN_OR_RETURN(std::string name, ParseName());
      if (name == "true") {
        // empty body marker
      } else if (name == "Label") {
        TREEQ_RETURN_IF_ERROR(Expect('('));
        TREEQ_ASSIGN_OR_RETURN(std::string label, ParseQuoted());
        TREEQ_RETURN_IF_ERROR(Expect(','));
        TREEQ_ASSIGN_OR_RETURN(std::string v, ParseName());
        TREEQ_RETURN_IF_ERROR(Expect(')'));
        query.AddLabelAtom(label, query.VarByName(v));
      } else if (name.starts_with("Lab_")) {
        TREEQ_RETURN_IF_ERROR(Expect('('));
        TREEQ_ASSIGN_OR_RETURN(std::string v, ParseName());
        TREEQ_RETURN_IF_ERROR(Expect(')'));
        query.AddLabelAtom(name.substr(4), query.VarByName(v));
      } else {
        Result<Axis> axis = ParseAxis(name);
        if (!axis.ok()) return Error("unknown atom '" + name + "'");
        TREEQ_RETURN_IF_ERROR(Expect('('));
        TREEQ_ASSIGN_OR_RETURN(std::string v0, ParseName());
        TREEQ_RETURN_IF_ERROR(Expect(','));
        TREEQ_ASSIGN_OR_RETURN(std::string v1, ParseName());
        TREEQ_RETURN_IF_ERROR(Expect(')'));
        // Sequence the interning calls so first occurrence order assigns
        // variable indices left-to-right (argument evaluation order is
        // unspecified).
        int i0 = query.VarByName(v0);
        int i1 = query.VarByName(v1);
        query.AddAxisAtom(axis.value(), i0, i1);
      }
      Skip();
      if (Peek() == ',') {
        ++pos_;
        continue;
      }
      TREEQ_RETURN_IF_ERROR(Expect('.'));
      break;
    }
    Skip();
    if (!Eof()) return Error("trailing input");
    // Route validation failures through Error() so every non-OK outcome of
    // ParseCq is a ParseError carrying the byte offset.
    if (Status valid = query.Validate(); !valid.ok()) {
      return Error(valid.message());
    }
    return query;
  }

 private:
  bool Eof() const { return pos_ >= input_.size(); }
  char Peek() const { return Eof() ? '\0' : input_[pos_]; }

  Status Error(const std::string& msg) const {
    return Status::ParseError(msg + " at offset " + std::to_string(pos_));
  }

  void Skip() {
    for (;;) {
      while (!Eof() && std::isspace(static_cast<unsigned char>(Peek()))) {
        ++pos_;
      }
      if (!Eof() && (Peek() == '%' || Peek() == '#')) {
        while (!Eof() && Peek() != '\n') ++pos_;
        continue;
      }
      return;
    }
  }

  Status Expect(char c) {
    Skip();
    if (Peek() != c) return Error(std::string("expected '") + c + "'");
    ++pos_;
    return Status::OK();
  }

  static bool IsNameChar(char c) {
    return std::isalnum(static_cast<unsigned char>(c)) || c == '_' ||
           c == '+' || c == '*' || c == '-';
  }

  Result<std::string> ParseName() {
    Skip();
    size_t start = pos_;
    while (!Eof() && IsNameChar(Peek())) ++pos_;
    if (pos_ == start) return Error("expected a name");
    return std::string(input_.substr(start, pos_ - start));
  }

  Result<std::string> ParseQuoted() {
    Skip();
    if (Peek() != '"') return Error("expected '\"'");
    ++pos_;
    size_t start = pos_;
    while (!Eof() && Peek() != '"') ++pos_;
    if (Eof()) return Error("unterminated string");
    std::string s(input_.substr(start, pos_ - start));
    ++pos_;
    return s;
  }

  std::string_view input_;
  size_t pos_ = 0;
};

}  // namespace

Result<ConjunctiveQuery> ParseCq(std::string_view input) {
  return CqParser(input).Parse();
}

}  // namespace cq
}  // namespace treeq
