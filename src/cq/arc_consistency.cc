#include "cq/arc_consistency.h"

#include <deque>
#include <map>
#include <utility>

#include "datalog/horn.h"
#include "obs/obs.h"

namespace treeq {
namespace cq {
namespace {

/// Materialized adjacency of one axis over the tree (both directions).
struct Adjacency {
  std::vector<std::vector<NodeId>> fwd;  // fwd[u] = {v : axis(u, v)}
  std::vector<std::vector<NodeId>> rev;  // rev[v] = {u : axis(u, v)}
};

Adjacency Materialize(const Tree& tree, const TreeOrders& orders, Axis axis) {
  const int n = tree.num_nodes();
  Adjacency adj;
  adj.fwd.resize(n);
  adj.rev.resize(n);
  for (NodeId u = 0; u < n; ++u) {
    for (NodeId v = 0; v < n; ++v) {
      if (AxisHolds(tree, orders, axis, u, v)) {
        adj.fwd[u].push_back(v);
        adj.rev[v].push_back(u);
      }
    }
  }
  return adj;
}

/// Initial candidate sets: intersection of the unary (label) atoms and the
/// caller-provided restriction, if any.
PreValuation InitialTheta(const ConjunctiveQuery& query, const Tree& tree,
                          const PreValuation* initial) {
  const int n = tree.num_nodes();
  PreValuation theta(query.num_vars(), NodeSet::All(n));
  if (initial != nullptr) {
    TREEQ_CHECK(static_cast<int>(initial->size()) == query.num_vars());
    for (int x = 0; x < query.num_vars(); ++x) {
      theta[x].IntersectWith((*initial)[x]);
    }
  }
  for (const LabelAtom& a : query.label_atoms()) {
    NodeSet& set = theta[a.var];
    for (NodeId v = 0; v < n; ++v) {
      if (set.Contains(v) && !tree.HasLabel(v, a.label)) set.Erase(v);
    }
  }
  return theta;
}

std::map<Axis, Adjacency> MaterializeUsedAxes(const ConjunctiveQuery& query,
                                              const Tree& tree,
                                              const TreeOrders& orders) {
  std::map<Axis, Adjacency> adjacency;
  for (Axis axis : query.AxesUsed()) {
    adjacency.emplace(axis, Materialize(tree, orders, axis));
  }
  return adjacency;
}

AcResult DirectAc(const ConjunctiveQuery& query, const Tree& tree,
                  const TreeOrders& orders, const PreValuation* initial) {
  TREEQ_OBS_SPAN("cq.ac.direct");
  const int n = tree.num_nodes();
  PreValuation theta = InitialTheta(query, tree, initial);
  std::map<Axis, Adjacency> adjacency = MaterializeUsedAxes(query, tree, orders);

  // AC-4 support counters: per directed constraint (atom, side) and value,
  // the number of supporting partners still alive.
  const int num_atoms = static_cast<int>(query.axis_atoms().size());
  // counters[2 * atom + 0][v]: supports of v in Theta(var0) among Theta(var1)
  // counters[2 * atom + 1][w]: supports of w in Theta(var1) among Theta(var0)
  std::vector<std::vector<int>> counters(2 * num_atoms,
                                         std::vector<int>(n, 0));

  std::deque<std::pair<int, NodeId>> removed;  // (variable, value)
  auto erase_value = [&](int var, NodeId v) {
    if (theta[var].Contains(v)) {
      TREEQ_OBS_INC("cq.ac.domain_shrinks");
      theta[var].Erase(v);
      removed.emplace_back(var, v);
    }
  };

  // Initialize counters; values with zero support are removed.
  for (int i = 0; i < num_atoms; ++i) {
    const AxisAtom& atom = query.axis_atoms()[i];
    const Adjacency& adj = adjacency.at(atom.axis);
    for (NodeId v = 0; v < n; ++v) {
      if (theta[atom.var0].Contains(v)) {
        int count = 0;
        for (NodeId w : adj.fwd[v]) {
          if (theta[atom.var1].Contains(w)) ++count;
        }
        counters[2 * i][v] = count;
      }
      if (theta[atom.var1].Contains(v)) {
        int count = 0;
        for (NodeId u : adj.rev[v]) {
          if (theta[atom.var0].Contains(u)) ++count;
        }
        counters[2 * i + 1][v] = count;
      }
    }
  }
  for (int i = 0; i < num_atoms; ++i) {
    const AxisAtom& atom = query.axis_atoms()[i];
    for (NodeId v = 0; v < n; ++v) {
      if (theta[atom.var0].Contains(v) && counters[2 * i][v] == 0) {
        erase_value(atom.var0, v);
      }
      if (theta[atom.var1].Contains(v) && counters[2 * i + 1][v] == 0) {
        erase_value(atom.var1, v);
      }
    }
  }

  // Propagate removals.
  while (!removed.empty()) {
    TREEQ_OBS_INC("cq.ac.propagation_rounds");
    auto [var, value] = removed.front();
    removed.pop_front();
    for (int i = 0; i < num_atoms; ++i) {
      const AxisAtom& atom = query.axis_atoms()[i];
      const Adjacency& adj = adjacency.at(atom.axis);
      if (atom.var1 == var) {
        // value left Theta(var1): decrement supports of its rev-partners.
        for (NodeId u : adj.rev[value]) {
          if (theta[atom.var0].Contains(u) && --counters[2 * i][u] == 0) {
            erase_value(atom.var0, u);
          }
        }
      }
      if (atom.var0 == var) {
        for (NodeId w : adj.fwd[value]) {
          if (theta[atom.var1].Contains(w) &&
              --counters[2 * i + 1][w] == 0) {
            erase_value(atom.var1, w);
          }
        }
      }
    }
  }

  AcResult result;
  result.theta = std::move(theta);
  result.consistent = true;
  for (const NodeSet& set : result.theta) {
    if (set.empty()) result.consistent = false;
  }
  return result;
}

/// The paper's proof of Proposition 6.2: propositions ThetaBar(x, v) mean
/// "v is NOT in Theta(x)"; Horn clauses derive exactly the unsupported
/// values, and Minoux' algorithm solves the instance in linear time.
AcResult HornAc(const ConjunctiveQuery& query, const Tree& tree,
                const TreeOrders& orders, const PreValuation* initial) {
  TREEQ_OBS_SPAN("cq.ac.horn");
  const int n = tree.num_nodes();
  std::map<Axis, Adjacency> adjacency = MaterializeUsedAxes(query, tree, orders);

  horn::HornInstance instance;
  // Proposition ids: var * n + v.
  instance.AddPredicates(query.num_vars() * n);
  auto prop = [n](int var, NodeId v) { return var * n + v; };

  // { ThetaBar(x, v) <- .  |  P(x) in Q, not P(v) } — the caller-provided
  // restriction acts as extra singleton unary relations.
  for (const LabelAtom& a : query.label_atoms()) {
    for (NodeId v = 0; v < n; ++v) {
      if (!tree.HasLabel(v, a.label)) instance.AddFact(prop(a.var, v));
    }
  }
  if (initial != nullptr) {
    TREEQ_CHECK(static_cast<int>(initial->size()) == query.num_vars());
    for (int x = 0; x < query.num_vars(); ++x) {
      for (NodeId v = 0; v < n; ++v) {
        if (!(*initial)[x].Contains(v)) instance.AddFact(prop(x, v));
      }
    }
  }
  // { ThetaBar(x, v) <- AND { ThetaBar(y, w) | R(v, w) }  |  R(x, y) in Q }
  // and symmetrically for the second argument.
  for (const AxisAtom& a : query.axis_atoms()) {
    const Adjacency& adj = adjacency.at(a.axis);
    for (NodeId v = 0; v < n; ++v) {
      std::vector<horn::PredId> body;
      body.reserve(adj.fwd[v].size());
      for (NodeId w : adj.fwd[v]) body.push_back(prop(a.var1, w));
      instance.AddClause(prop(a.var0, v), std::move(body));
    }
    for (NodeId w = 0; w < n; ++w) {
      std::vector<horn::PredId> body;
      body.reserve(adj.rev[w].size());
      for (NodeId u : adj.rev[w]) body.push_back(prop(a.var0, u));
      instance.AddClause(prop(a.var1, w), std::move(body));
    }
  }

  TREEQ_OBS_COUNT("cq.ac.horn_clauses", instance.num_clauses());
  std::vector<char> excluded = instance.Solve();
  AcResult result;
  result.theta.assign(query.num_vars(), NodeSet(n));
  result.consistent = true;
  for (int x = 0; x < query.num_vars(); ++x) {
    for (NodeId v = 0; v < n; ++v) {
      if (!excluded[prop(x, v)]) result.theta[x].Insert(v);
    }
    if (result.theta[x].empty()) result.consistent = false;
  }
  return result;
}

}  // namespace

AcResult ComputeMaxArcConsistent(const ConjunctiveQuery& query,
                                 const Tree& tree, const TreeOrders& orders,
                                 AcImplementation implementation,
                                 const PreValuation* initial) {
  TREEQ_CHECK(query.Validate().ok());
  switch (implementation) {
    case AcImplementation::kDirect:
      return DirectAc(query, tree, orders, initial);
    case AcImplementation::kHornEncoding:
      return HornAc(query, tree, orders, initial);
  }
  TREEQ_CHECK(false);
  return {};
}

bool IsArcConsistent(const ConjunctiveQuery& query, const Tree& tree,
                     const TreeOrders& orders, const PreValuation& theta) {
  const int n = tree.num_nodes();
  for (const NodeSet& set : theta) {
    if (set.empty()) return false;
  }
  for (const LabelAtom& a : query.label_atoms()) {
    for (NodeId v = 0; v < n; ++v) {
      if (theta[a.var].Contains(v) && !tree.HasLabel(v, a.label)) {
        return false;
      }
    }
  }
  for (const AxisAtom& a : query.axis_atoms()) {
    for (NodeId v = 0; v < n; ++v) {
      if (theta[a.var0].Contains(v)) {
        bool support = false;
        for (NodeId w = 0; w < n && !support; ++w) {
          support = theta[a.var1].Contains(w) &&
                    AxisHolds(tree, orders, a.axis, v, w);
        }
        if (!support) return false;
      }
      if (theta[a.var1].Contains(v)) {
        bool support = false;
        for (NodeId u = 0; u < n && !support; ++u) {
          support = theta[a.var0].Contains(u) &&
                    AxisHolds(tree, orders, a.axis, u, v);
        }
        if (!support) return false;
      }
    }
  }
  return true;
}

}  // namespace cq
}  // namespace treeq
