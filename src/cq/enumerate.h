#ifndef TREEQ_CQ_ENUMERATE_H_
#define TREEQ_CQ_ENUMERATE_H_

#include <cstdint>

#include "cq/ast.h"
#include "cq/yannakakis.h"
#include "tree/document.h"
#include "tree/orders.h"
#include "util/exec_context.h"
#include "util/status.h"

/// \file enumerate.h
/// Backtracking-free enumeration of all solutions of an acyclic conjunctive
/// query from a fully reduced (globally consistent) pre-valuation —
/// Figure 6 and Propositions 6.9/6.10. Because every candidate value
/// participates in a solution, the recursion of Figure 6 never dead-ends:
/// each partial assignment passing the parent-edge check completes to at
/// least one output.

namespace treeq {
namespace cq {

/// Enumerates complete satisfying valuations (one entry per query variable)
/// in the variable order of Figure 6 (pre-order DFS of the query tree).
/// Stops after `limit` solutions. Input must come from FullReducer on a
/// satisfiable query (reduced.satisfiable). The ExecContext is charged one
/// unit per candidate node examined plus the solution-vector bytes against
/// the memory budget, so deadlines bound output enumeration too.
Result<std::vector<std::vector<NodeId>>> EnumerateSolutions(
    const ConjunctiveQuery& query, const Tree& tree, const TreeOrders& orders,
    const ReducedQuery& reduced, uint64_t limit = UINT64_MAX,
    const ExecContext& exec = ExecContext::Unbounded());

/// Full k-ary acyclic evaluation (Proposition 6.10 without the pointer
/// refinement): FullReducer + enumeration + head projection, deduplicated.
/// `index` and `memo` are the FullReducer reuse hooks (cq/yannakakis.h):
/// cached per-label candidate sets and cross-query memoized semijoin
/// images; both optional, both result-preserving bit for bit.
Result<TupleSet> EvaluateAcyclic(const ConjunctiveQuery& query,
                                 const Tree& tree, const TreeOrders& orders,
                                 uint64_t limit = UINT64_MAX,
                                 const ExecContext& exec =
                                     ExecContext::Unbounded(),
                                 const LabelIndex* index = nullptr,
                                 AxisImageMemo* memo = nullptr);

/// Document-taking overload (tree/document.h); thin forwarder that routes
/// the label atoms through the document's cached LabelIndex.
inline Result<TupleSet> EvaluateAcyclic(
    const ConjunctiveQuery& query, const Document& doc,
    uint64_t limit = UINT64_MAX,
    const ExecContext& exec = ExecContext::Unbounded(),
    AxisImageMemo* memo = nullptr) {
  return EvaluateAcyclic(query, doc.tree(), doc.orders(), limit, exec,
                         &doc.label_index(), memo);
}

}  // namespace cq
}  // namespace treeq

#endif  // TREEQ_CQ_ENUMERATE_H_
