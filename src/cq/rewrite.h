#ifndef TREEQ_CQ_REWRITE_H_
#define TREEQ_CQ_REWRITE_H_

#include <optional>
#include <vector>

#include "cq/ast.h"
#include "util/status.h"

/// \file rewrite.h
/// Theorem 5.1 ([62, 8, 35]): every conjunctive query over trees is
/// equivalent to a union of *acyclic* positive queries, computable in
/// exponential time. The proof's algorithm is implemented faithfully:
///
///  1. eliminate Following via NextSibling+ over ancestors (Section 2),
///  2. enumerate the order types psi of the variables (weak orders: the
///     disjuncts of the <pre trichotomy CNF),
///  3. per psi: merge equated variables, strengthen R* to R+, drop
///     redundant R+ next to R, and
///  4. repeatedly resolve sibling in-edges R(x,z), S(y,z) via **Table 1**
///     (the satisfiability of R(x,z) ∧ S(y,z) ∧ x <pre y), replacing
///     R(x,z) by R(x,y) in the satisfiable cases,
///  5. drop the <pre atoms; each survivor is acyclic (every variable has at
///     most one incoming axis atom).
///
/// The union of the outputs is equivalent to the input. The blow-up is
/// inherently exponential in general ([35]); the special case
/// CQ[{Child, NextSibling}] rewrites deterministically (no order-type
/// enumeration) — RewriteChildNextSibling, implicit in [31].

namespace treeq {
namespace cq {

/// The four axis families of Table 1.
enum class RewriteAxis {
  kChild,            // Child
  kChildPlus,        // Child+
  kNextSibling,      // NextSibling
  kNextSiblingPlus,  // NextSibling+
};

/// Table 1: is R(x, z) ∧ S(y, z) ∧ x <pre y satisfiable over trees?
bool Table1Satisfiable(RewriteAxis r, RewriteAxis s);

/// Output of the Theorem 5.1 rewriting.
struct RewriteOutput {
  /// The equivalent union (may be empty: the input is unsatisfiable on all
  /// trees). Each query is acyclic; head arity is preserved.
  std::vector<ConjunctiveQuery> queries;
  /// Number of order types psi enumerated (the exponential factor).
  int order_types_considered = 0;
};

/// Rewrites `query` (axes: Child, Child+, Child*, NextSibling,
/// NextSibling+, NextSibling*, Following, Self, and their inverses) into an
/// equivalent union of acyclic queries. Unsupported for other axes.
Result<RewriteOutput> RewriteToAcyclicUnion(const ConjunctiveQuery& query);

/// The lazy order-refinement variant in the spirit of [35]: instead of
/// enumerating every weak order of the variables up front, it keeps a
/// partial order and branches only when a Table 1 resolution actually needs
/// to know how two variables relate (merging, x <pre y, or y <pre x); R*
/// atoms are split into "=" and "+" readings only when they collide.
/// `order_types_considered` counts the leaf states explored — compare with
/// the eager variant's ordered Bell numbers. Semantically equivalent to
/// RewriteToAcyclicUnion (rewrite_test checks both against the oracle). The
/// outputs may contain Child*/NextSibling* atoms (they are only
/// strengthened on demand), which is fine for acyclic *positive* queries.
Result<RewriteOutput> RewriteToAcyclicUnionLazy(const ConjunctiveQuery& query);

/// Linear special case for CQ[{Child, NextSibling, Self}] (and inverses):
/// returns the single equivalent acyclic query, or nullopt when the input
/// is unsatisfiable over all trees.
Result<std::optional<ConjunctiveQuery>> RewriteChildNextSibling(
    const ConjunctiveQuery& query);

}  // namespace cq
}  // namespace treeq

#endif  // TREEQ_CQ_REWRITE_H_
