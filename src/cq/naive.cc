#include "cq/naive.h"

#include <algorithm>
#include <set>

namespace treeq {
namespace cq {
namespace {

class Backtracker {
 public:
  Backtracker(const ConjunctiveQuery& query, const Tree& tree,
              const TreeOrders& orders, uint64_t budget, NaiveCqStats* stats,
              const ExecContext& exec)
      : query_(query), tree_(tree), orders_(orders), budget_(budget),
        stats_(stats), exec_(exec) {}

  /// Runs the search. If `first_only`, stops after one satisfying
  /// assignment.
  Result<TupleSet> Run(bool first_only) {
    first_only_ = first_only;
    assignment_.assign(query_.num_vars(), kNullNode);
    results_.clear();
    found_ = false;
    TREEQ_RETURN_IF_ERROR(Assign(0));
    // Results were deduplicated on insertion (head projections of many
    // assignments coincide, and materializing the duplicates first can
    // exhaust memory); std::set iteration already yields sorted order.
    return TupleSet(results_.begin(), results_.end());
  }

 private:
  Status Assign(int var) {
    if (found_ && first_only_) return Status::OK();
    if (var == query_.num_vars()) {
      std::vector<NodeId> tuple;
      tuple.reserve(query_.head_vars().size());
      for (int h : query_.head_vars()) tuple.push_back(assignment_[h]);
      results_.insert(std::move(tuple));
      found_ = true;
      return Status::OK();
    }
    for (NodeId v = 0; v < tree_.num_nodes(); ++v) {
      if (stats_ != nullptr) ++stats_->assignments_tried;
      TREEQ_RETURN_IF_ERROR(exec_.Charge(1));
      if (budget_ == 0) {
        return Status::ResourceExhausted("naive CQ evaluation budget exceeded");
      }
      --budget_;
      assignment_[var] = v;
      bool ok = true;
      for (const LabelAtom& a : query_.label_atoms()) {
        if (a.var == var && !tree_.HasLabel(v, a.label)) {
          ok = false;
          break;
        }
      }
      if (ok) {
        for (const AxisAtom& a : query_.axis_atoms()) {
          int last = std::max(a.var0, a.var1);
          if (last != var) continue;  // not yet fully bound, or checked before
          if (!AxisHolds(tree_, orders_, a.axis, assignment_[a.var0],
                         assignment_[a.var1])) {
            ok = false;
            break;
          }
        }
      }
      if (ok) TREEQ_RETURN_IF_ERROR(Assign(var + 1));
      if (found_ && first_only_) break;
    }
    assignment_[var] = kNullNode;
    return Status::OK();
  }

  const ConjunctiveQuery& query_;
  const Tree& tree_;
  const TreeOrders& orders_;
  uint64_t budget_;
  NaiveCqStats* stats_;
  const ExecContext& exec_;
  bool first_only_ = false;
  bool found_ = false;
  std::vector<NodeId> assignment_;
  std::set<std::vector<NodeId>> results_;
};

}  // namespace

Result<TupleSet> NaiveEvaluateCq(const ConjunctiveQuery& query,
                                 const Tree& tree, const TreeOrders& orders,
                                 uint64_t budget, NaiveCqStats* stats,
                                 const ExecContext& exec) {
  TREEQ_RETURN_IF_ERROR(query.Validate());
  Backtracker search(query, tree, orders, budget, stats, exec);
  return search.Run(/*first_only=*/false);
}

Result<bool> NaiveSatisfiableCq(const ConjunctiveQuery& query,
                                const Tree& tree, const TreeOrders& orders,
                                uint64_t budget, NaiveCqStats* stats,
                                const ExecContext& exec) {
  TREEQ_RETURN_IF_ERROR(query.Validate());
  Backtracker search(query, tree, orders, budget, stats, exec);
  TREEQ_ASSIGN_OR_RETURN(TupleSet results, search.Run(/*first_only=*/true));
  return !results.empty();
}

}  // namespace cq
}  // namespace treeq
