#ifndef TREEQ_CQ_ARC_CONSISTENCY_H_
#define TREEQ_CQ_ARC_CONSISTENCY_H_

#include <vector>

#include "cq/ast.h"
#include "tree/orders.h"
#include "util/status.h"

/// \file arc_consistency.h
/// Arc-consistent pre-valuations (Section 6). A pre-valuation assigns each
/// query variable a nonempty candidate node set; it is arc-consistent when
/// every unary atom holds on every candidate and every binary atom has
/// support in both directions (Definition in Section 6).
///
/// ComputeMaxArcConsistent computes the unique subset-maximal arc-consistent
/// pre-valuation in O(||A|| * |Q|) (Proposition 6.2), where ||A|| counts the
/// materialized axis relations. Two interchangeable implementations are
/// provided (an ablation benchmarked in bench_thm65_xbar):
///   - kHornEncoding: the paper's proof verbatim — encode "v is NOT in
///     Theta(x)" as propositional Horn clauses and run Minoux' algorithm;
///   - kDirect: an AC-4-style support-counting worklist, same asymptotics,
///     smaller constants.

namespace treeq {
namespace cq {

/// Candidate sets, indexed by query variable.
using PreValuation = std::vector<NodeSet>;

enum class AcImplementation {
  kDirect,
  kHornEncoding,
};

/// Result of the maximal-arc-consistency computation. When `consistent` is
/// false some variable's candidate set is empty and no arc-consistent
/// pre-valuation exists (so the query is unsatisfiable, Section 6).
struct AcResult {
  bool consistent = false;
  PreValuation theta;
};

/// Computes the subset-maximal arc-consistent pre-valuation of `query` on
/// `tree`. If `initial` is non-null it restricts the starting candidate
/// sets (used e.g. for the singleton relations of tuple-membership checks,
/// Section 6); by default every variable starts at the whole domain.
AcResult ComputeMaxArcConsistent(
    const ConjunctiveQuery& query, const Tree& tree, const TreeOrders& orders,
    AcImplementation implementation = AcImplementation::kDirect,
    const PreValuation* initial = nullptr);

/// Checks the arc-consistency conditions for `theta` directly from the
/// definition (O(|Q| * n^2); for tests).
bool IsArcConsistent(const ConjunctiveQuery& query, const Tree& tree,
                     const TreeOrders& orders, const PreValuation& theta);

}  // namespace cq
}  // namespace treeq

#endif  // TREEQ_CQ_ARC_CONSISTENCY_H_
