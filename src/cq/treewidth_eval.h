#ifndef TREEQ_CQ_TREEWIDTH_EVAL_H_
#define TREEQ_CQ_TREEWIDTH_EVAL_H_

#include <cstdint>

#include "cq/ast.h"
#include "tree/orders.h"
#include "tree/treewidth.h"
#include "util/status.h"

/// \file treewidth_eval.h
/// Theorem 4.1 ([17]): a Boolean conjunctive query of tree-width k can be
/// evaluated in time O((|A|^{k+1} + ||A||) * |Q|). The algorithm:
///
///   1. tree-decompose the query graph (variables as vertices, binary atoms
///      as edges) with the min-degree heuristic of tree/treewidth.h;
///   2. materialize, per decomposition bag, the relation of all satisfying
///      assignments of the bag's variables — |A|^{bag size} candidates,
///      filtered by the atoms covered by the bag;
///   3. run Yannakakis on the (always acyclic) decomposition tree:
///      a bottom-up semijoin sweep decides the Boolean query; a top-down
///      sweep plus projection yields distinguished-variable results.
///
/// This generalizes acyclic evaluation (tree-shaped queries have width 1
/// and bags of size 2) and is the paper's route from bounded tree-width to
/// tractability. For X-underbar signatures, x_property.h is cheaper; for
/// arbitrary cyclic queries of small width, this is the polynomial path.

namespace treeq {
namespace cq {

/// Evaluation statistics (exposed for the benches).
struct TreewidthEvalStats {
  int width = 0;                 // width of the decomposition used
  uint64_t bag_tuples = 0;       // total materialized bag-relation tuples
  uint64_t candidate_checks = 0; // assignments filtered during step 2
};

/// Evaluates the Boolean query via the decomposition. Any conjunctive
/// query is accepted; cost is exponential only in the decomposition width.
Result<bool> EvaluateBooleanTreewidth(const ConjunctiveQuery& query,
                                      const Tree& tree,
                                      const TreeOrders& orders,
                                      TreewidthEvalStats* stats = nullptr);

/// Full evaluation: all result tuples over the query's head variables
/// (deduplicated, sorted). Uses the same decomposition machinery, with the
/// head variables joined into the bags that cover them.
Result<TupleSet> EvaluateTreewidth(const ConjunctiveQuery& query,
                                   const Tree& tree, const TreeOrders& orders,
                                   TreewidthEvalStats* stats = nullptr);

}  // namespace cq
}  // namespace treeq

#endif  // TREEQ_CQ_TREEWIDTH_EVAL_H_
