#include "cq/rewrite.h"

#include <algorithm>
#include <map>
#include <set>
#include <tuple>
#include <vector>

namespace treeq {
namespace cq {

bool Table1Satisfiable(RewriteAxis r, RewriteAxis s) {
  // Rows: R; columns: S in order Child, Child+, NextSibling, NextSibling+.
  static constexpr bool kTable[4][4] = {
      /* Child        */ {false, false, true, true},
      /* Child+       */ {true, true, true, true},
      /* NextSibling  */ {false, false, false, false},
      /* NextSibling+ */ {false, false, true, true},
  };
  return kTable[static_cast<int>(r)][static_cast<int>(s)];
}

namespace {

/// Union-find over variable indices.
class VarUnion {
 public:
  explicit VarUnion(int n) : parent_(n) {
    for (int i = 0; i < n; ++i) parent_[i] = i;
  }
  int Find(int x) {
    while (parent_[x] != x) {
      parent_[x] = parent_[parent_[x]];
      x = parent_[x];
    }
    return x;
  }
  void Union(int a, int b) { parent_[Find(a)] = Find(b); }

 private:
  std::vector<int> parent_;
};

/// The paper's signature for Theorem 5.1 after normalization.
bool IsRewriteAxis(Axis axis) {
  switch (axis) {
    case Axis::kChild:
    case Axis::kDescendant:
    case Axis::kDescendantOrSelf:
    case Axis::kNextSibling:
    case Axis::kFollowingSibling:
    case Axis::kFollowingSiblingOrSelf:
      return true;
    default:
      return false;
  }
}

Axis ToAxis(RewriteAxis r) {
  switch (r) {
    case RewriteAxis::kChild:
      return Axis::kChild;
    case RewriteAxis::kChildPlus:
      return Axis::kDescendant;
    case RewriteAxis::kNextSibling:
      return Axis::kNextSibling;
    case RewriteAxis::kNextSiblingPlus:
      return Axis::kFollowingSibling;
  }
  TREEQ_CHECK(false);
  return Axis::kSelf;
}

/// Preprocessed input: Self unified away, inverses normalized, Following
/// expanded; axes restricted to the Theorem 5.1 signature.
struct Preprocessed {
  ConjunctiveQuery query;     // Self-free, Following-free
  std::vector<int> head_map;  // original head position -> query var
};

Result<Preprocessed> Preprocess(const ConjunctiveQuery& input) {
  TREEQ_RETURN_IF_ERROR(input.Validate());
  ConjunctiveQuery normalized = input;
  normalized.NormalizeInverseAxes();

  // Expand Following(x, y) into NextSibling+(x0, y0), Child*(x0, x),
  // Child*(y0, y) with fresh x0, y0 (Section 2).
  ConjunctiveQuery expanded;
  for (int v = 0; v < normalized.num_vars(); ++v) {
    expanded.AddVar(normalized.var_names()[v]);
  }
  for (const LabelAtom& a : normalized.label_atoms()) {
    expanded.AddLabelAtom(a.label, a.var);
  }
  int fresh = 0;
  for (const AxisAtom& a : normalized.axis_atoms()) {
    if (a.axis == Axis::kFollowing) {
      int x0 = expanded.AddVar("_f" + std::to_string(fresh++));
      int y0 = expanded.AddVar("_f" + std::to_string(fresh++));
      expanded.AddAxisAtom(Axis::kFollowingSibling, x0, y0);
      expanded.AddAxisAtom(Axis::kDescendantOrSelf, x0, a.var0);
      expanded.AddAxisAtom(Axis::kDescendantOrSelf, y0, a.var1);
    } else {
      expanded.AddAxisAtom(a.axis, a.var0, a.var1);
    }
  }
  for (int h : normalized.head_vars()) expanded.AddHeadVar(h);

  // Unify Self atoms away.
  VarUnion uf(expanded.num_vars());
  for (const AxisAtom& a : expanded.axis_atoms()) {
    if (a.axis == Axis::kSelf) uf.Union(a.var0, a.var1);
  }
  Preprocessed out;
  std::map<int, int> rep_to_var;
  std::vector<int> var_of(expanded.num_vars());
  for (int v = 0; v < expanded.num_vars(); ++v) {
    int rep = uf.Find(v);
    auto it = rep_to_var.find(rep);
    if (it == rep_to_var.end()) {
      int nv = out.query.AddVar(expanded.var_names()[v]);
      rep_to_var.emplace(rep, nv);
      var_of[v] = nv;
    } else {
      var_of[v] = it->second;
    }
  }
  for (const LabelAtom& a : expanded.label_atoms()) {
    out.query.AddLabelAtom(a.label, var_of[a.var]);
  }
  for (const AxisAtom& a : expanded.axis_atoms()) {
    if (a.axis == Axis::kSelf) continue;
    if (!IsRewriteAxis(a.axis)) {
      return Status::Unsupported(std::string("axis ") + AxisName(a.axis) +
                                 " is outside the Theorem 5.1 signature");
    }
    out.query.AddAxisAtom(a.axis, var_of[a.var0], var_of[a.var1]);
  }
  for (int h : expanded.head_vars()) {
    out.query.AddHeadVar(var_of[h]);
    out.head_map.push_back(var_of[h]);
  }
  return out;
}

/// Enumerates all ordered set partitions (weak orders) of {0..k-1} as
/// block-index vectors: psi[v] = position of v's block in the <pre order.
void EnumerateWeakOrders(int k, std::vector<std::vector<int>>* out) {
  // partitions: list of blocks in order; grow element by element.
  std::vector<std::vector<std::vector<int>>> current = {{{0}}};
  if (k == 0) {
    out->push_back({});
    return;
  }
  for (int e = 1; e < k; ++e) {
    std::vector<std::vector<std::vector<int>>> next;
    for (const auto& partition : current) {
      const int m = static_cast<int>(partition.size());
      for (int b = 0; b < m; ++b) {  // join an existing block
        auto copy = partition;
        copy[b].push_back(e);
        next.push_back(std::move(copy));
      }
      for (int p = 0; p <= m; ++p) {  // new singleton block at position p
        auto copy = partition;
        copy.insert(copy.begin() + p, {e});
        next.push_back(std::move(copy));
      }
    }
    current = std::move(next);
  }
  for (const auto& partition : current) {
    std::vector<int> psi(k, -1);
    for (size_t b = 0; b < partition.size(); ++b) {
      for (int v : partition[b]) psi[v] = static_cast<int>(b);
    }
    out->push_back(std::move(psi));
  }
}

/// One Q_psi under rewriting: atoms keyed by (source, target) with a single
/// axis each (pair normalization keeps that invariant).
class WorkQuery {
 public:
  // Returns false if Q_psi is unsatisfiable.
  bool Init(const ConjunctiveQuery& query, const std::vector<int>& psi,
            int num_blocks) {
    num_blocks_ = num_blocks;
    for (const AxisAtom& a : query.axis_atoms()) {
      int x = psi[a.var0];
      int y = psi[a.var1];
      RewriteAxis r;
      switch (a.axis) {
        case Axis::kChild:
          r = RewriteAxis::kChild;
          break;
        case Axis::kDescendant:
          r = RewriteAxis::kChildPlus;
          break;
        case Axis::kDescendantOrSelf:
          if (x == y) continue;  // R*(x, x) is true — drop
          r = RewriteAxis::kChildPlus;  // distinct blocks: strengthen
          break;
        case Axis::kNextSibling:
          r = RewriteAxis::kNextSibling;
          break;
        case Axis::kFollowingSibling:
          r = RewriteAxis::kNextSiblingPlus;
          break;
        case Axis::kFollowingSiblingOrSelf:
          if (x == y) continue;
          r = RewriteAxis::kNextSiblingPlus;
          break;
        default:
          TREEQ_CHECK(false);
          return false;
      }
      if (x == y) return false;  // irreflexive axis on one node
      if (x > y) return false;   // contradicts x <pre y: Q_psi cyclic
      if (!AddAtom(r, x, y)) return false;
    }
    return true;
  }

  /// The Table 1 resolution loop. Returns false if Q_psi is unsatisfiable.
  bool Resolve() {
    for (;;) {
      // Find z maximal with >= 2 in-atoms.
      int z = -1;
      for (const auto& [key, axis] : atoms_) {
        (void)axis;
        int target = key.second;
        if (target > z && InDegree(target) >= 2) z = target;
      }
      if (z == -1) return true;
      // Two in-atoms with minimal sources x < y.
      int x = -1, y = -1;
      for (const auto& [key, axis] : atoms_) {
        if (key.second != z) continue;
        if (x == -1 || key.first < x) {
          y = x;
          x = key.first;
        } else if (y == -1 || key.first < y) {
          y = key.first;
        }
      }
      TREEQ_CHECK(x != -1 && y != -1 && x < y);
      RewriteAxis r = atoms_.at({x, z});
      RewriteAxis s = atoms_.at({y, z});
      if (!Table1Satisfiable(r, s)) return false;
      atoms_.erase({x, z});
      if (!AddAtom(r, x, y)) return false;
    }
  }

  const std::map<std::pair<int, int>, RewriteAxis>& atoms() const {
    return atoms_;
  }

 private:
  int InDegree(int target) const {
    int count = 0;
    for (const auto& [key, axis] : atoms_) {
      (void)axis;
      if (key.second == target) ++count;
    }
    return count;
  }

  /// Inserts an atom, applying the pair-normalization rules:
  ///   R next to R+ on the same pair -> keep R;
  ///   a Child-family atom next to a NextSibling-family atom -> unsat.
  /// Returns false on unsatisfiability.
  bool AddAtom(RewriteAxis r, int x, int y) {
    auto it = atoms_.find({x, y});
    if (it == atoms_.end()) {
      atoms_.emplace(std::make_pair(x, y), r);
      return true;
    }
    RewriteAxis existing = it->second;
    if (existing == r) return true;
    auto family = [](RewriteAxis a) {
      return a == RewriteAxis::kChild || a == RewriteAxis::kChildPlus ? 0 : 1;
    };
    if (family(existing) != family(r)) return false;  // Child vs NextSibling
    // Same family, different strength: the base relation implies the
    // transitive one; keep the stronger (base) atom.
    it->second = family(r) == 0 ? RewriteAxis::kChild
                                : RewriteAxis::kNextSibling;
    return true;
  }

  int num_blocks_ = 0;
  std::map<std::pair<int, int>, RewriteAxis> atoms_;
};

}  // namespace

Result<RewriteOutput> RewriteToAcyclicUnion(const ConjunctiveQuery& input) {
  TREEQ_ASSIGN_OR_RETURN(Preprocessed pre, Preprocess(input));
  const ConjunctiveQuery& query = pre.query;
  const int k = query.num_vars();

  std::vector<std::vector<int>> weak_orders;
  EnumerateWeakOrders(k, &weak_orders);

  RewriteOutput output;
  output.order_types_considered = static_cast<int>(weak_orders.size());

  for (const std::vector<int>& psi : weak_orders) {
    int num_blocks = 0;
    for (int b : psi) num_blocks = std::max(num_blocks, b + 1);

    WorkQuery work;
    if (!work.Init(query, psi, num_blocks)) continue;
    if (!work.Resolve()) continue;

    // Emit the acyclic query: variables are the blocks of psi.
    ConjunctiveQuery result;
    for (int b = 0; b < num_blocks; ++b) {
      // Name: the first input variable mapped to this block.
      std::string name = "b" + std::to_string(b);
      for (int v = 0; v < k; ++v) {
        if (psi[v] == b) {
          name = query.var_names()[v];
          break;
        }
      }
      result.AddVar(name);
    }
    for (const auto& [key, axis] : work.atoms()) {
      result.AddAxisAtom(ToAxis(axis), key.first, key.second);
    }
    std::set<std::pair<std::string, int>> label_seen;
    for (const LabelAtom& a : query.label_atoms()) {
      if (label_seen.insert({a.label, psi[a.var]}).second) {
        result.AddLabelAtom(a.label, psi[a.var]);
      }
    }
    for (int h : query.head_vars()) result.AddHeadVar(psi[h]);
    output.queries.push_back(std::move(result));
  }
  return output;
}

namespace {

/// One search state of the lazy rewriting: atoms over union-find classes, a
/// set of known strict <pre facts, and the equality classes themselves.
struct LazyState {
  std::vector<int> uf;                        // parent pointers
  std::set<std::pair<int, int>> less;         // known x <pre y facts
  std::set<std::tuple<Axis, int, int>> atoms; // Child/C+/C*/NS/NS+/NS* only

  int Find(int x) {
    while (uf[x] != x) {
      uf[x] = uf[uf[x]];
      x = uf[x];
    }
    return x;
  }
};

bool IsStarAxis(Axis a) {
  return a == Axis::kDescendantOrSelf || a == Axis::kFollowingSiblingOrSelf;
}
bool IsChildFamily(Axis a) {
  return a == Axis::kChild || a == Axis::kDescendant ||
         a == Axis::kDescendantOrSelf;
}
RewriteAxis PlusOf(Axis a) {
  return IsChildFamily(a) ? RewriteAxis::kChildPlus
                          : RewriteAxis::kNextSiblingPlus;
}
RewriteAxis AsRewriteAxis(Axis a) {
  switch (a) {
    case Axis::kChild:
      return RewriteAxis::kChild;
    case Axis::kDescendant:
      return RewriteAxis::kChildPlus;
    case Axis::kNextSibling:
      return RewriteAxis::kNextSibling;
    case Axis::kFollowingSibling:
      return RewriteAxis::kNextSiblingPlus;
    default:
      TREEQ_CHECK(false);
      return RewriteAxis::kChild;
  }
}

/// Reachability in the strict-order graph (non-star atoms + recorded
/// facts). Small queries, so a simple DFS suffices.
bool StrictlyBefore(const LazyState& s, int a, int b) {
  std::map<int, std::vector<int>> adj;
  for (const auto& [axis, x, y] : s.atoms) {
    if (!IsStarAxis(axis)) adj[x].push_back(y);
  }
  for (const auto& [x, y] : s.less) adj[x].push_back(y);
  std::set<int> seen = {a};
  std::vector<int> stack = {a};
  while (!stack.empty()) {
    int v = stack.back();
    stack.pop_back();
    if (v == b) return true;
    for (int w : adj[v]) {
      if (seen.insert(w).second) stack.push_back(w);
    }
  }
  return false;
}

/// Local normalization of a lazy state. Returns false when the state is
/// unsatisfiable. May merge classes (loops internally until stable).
bool NormalizeLazy(LazyState* s) {
  for (bool changed = true; changed;) {
    changed = false;
    // Canonicalize by union-find.
    {
      std::set<std::tuple<Axis, int, int>> next;
      for (const auto& [axis, x, y] : s->atoms) {
        next.insert({axis, s->Find(x), s->Find(y)});
      }
      s->atoms = std::move(next);
      std::set<std::pair<int, int>> next_less;
      for (const auto& [x, y] : s->less) {
        next_less.insert({s->Find(x), s->Find(y)});
      }
      s->less = std::move(next_less);
    }
    // Reflexive atoms / facts.
    for (auto it = s->atoms.begin(); it != s->atoms.end();) {
      const auto& [axis, x, y] = *it;
      if (x == y) {
        if (!IsStarAxis(axis)) return false;  // irreflexive relation
        it = s->atoms.erase(it);
        changed = true;
      } else {
        ++it;
      }
    }
    for (const auto& [x, y] : s->less) {
      if (x == y) return false;
    }
    // Pair rules per ordered variable pair.
    std::map<std::pair<int, int>, std::vector<Axis>> by_pair;
    for (const auto& [axis, x, y] : s->atoms) {
      by_pair[{x, y}].push_back(axis);
    }
    for (const auto& [pair, axes] : by_pair) {
      if (axes.size() < 2) continue;
      bool child_star = false, child_strict = false;
      bool sib_star = false, sib_strict = false;
      for (Axis a : axes) {
        (IsChildFamily(a) ? (IsStarAxis(a) ? child_star : child_strict)
                          : (IsStarAxis(a) ? sib_star : sib_strict)) = true;
      }
      bool child_any = child_star || child_strict;
      bool sib_any = sib_star || sib_strict;
      if (child_any && sib_any) {
        if (child_strict || sib_strict) return false;  // disjoint relations
        // C*(x,y) ∧ NS*(x,y) forces x = y.
        s->uf[s->Find(pair.first)] = s->Find(pair.second);
        changed = true;
        break;  // re-canonicalize
      }
      // Within one family: keep the strongest atom (base < plus < star).
      auto strength = [](Axis a) {
        if (a == Axis::kChild || a == Axis::kNextSibling) return 0;
        if (a == Axis::kDescendant || a == Axis::kFollowingSibling) return 1;
        return 2;
      };
      Axis best = axes[0];
      for (Axis a : axes) {
        if (strength(a) < strength(best)) best = a;
      }
      bool drop = false;
      for (Axis a : axes) drop = drop || a != best;
      if (drop) {
        for (Axis a : axes) {
          if (a != best) s->atoms.erase({a, pair.first, pair.second});
        }
        changed = true;
      }
    }
    if (changed) continue;
    // Order consistency: strict cycles are unsatisfiable; a star atom whose
    // reverse order is known strengthens or dies.
    for (const auto& [axis, x, y] : s->atoms) {
      if (!IsStarAxis(axis)) {
        if (StrictlyBefore(*s, y, x)) return false;
      } else if (StrictlyBefore(*s, y, x)) {
        return false;  // R*(x,y) needs x = y or x < y
      } else if (StrictlyBefore(*s, x, y)) {
        // Known strict: strengthen star to plus deterministically.
        Axis plus = IsChildFamily(axis) ? Axis::kDescendant
                                        : Axis::kFollowingSibling;
        s->atoms.erase({axis, x, y});
        s->atoms.insert({plus, x, y});
        changed = true;
        break;
      }
    }
  }
  return true;
}

}  // namespace

Result<RewriteOutput> RewriteToAcyclicUnionLazy(
    const ConjunctiveQuery& input) {
  TREEQ_ASSIGN_OR_RETURN(Preprocessed pre, Preprocess(input));
  const ConjunctiveQuery& query = pre.query;
  const int k = query.num_vars();

  LazyState initial;
  initial.uf.resize(k);
  for (int i = 0; i < k; ++i) initial.uf[i] = i;
  for (const AxisAtom& a : query.axis_atoms()) {
    initial.atoms.insert({a.axis, a.var0, a.var1});
  }

  RewriteOutput output;
  std::vector<LazyState> worklist = {std::move(initial)};
  const int kStateCap = 1 << 20;  // far above any ordered Bell we reach
  int leaves = 0;

  while (!worklist.empty()) {
    if (static_cast<int>(worklist.size()) + leaves > kStateCap) {
      return Status::Internal("lazy rewrite state explosion");
    }
    LazyState state = std::move(worklist.back());
    worklist.pop_back();
    if (!NormalizeLazy(&state)) continue;

    // Find a conflict: a variable with two incoming atoms.
    std::map<int, std::vector<std::tuple<Axis, int, int>>> incoming;
    for (const auto& atom : state.atoms) {
      incoming[std::get<2>(atom)].push_back(atom);
    }
    const std::tuple<Axis, int, int>* a0 = nullptr;
    const std::tuple<Axis, int, int>* a1 = nullptr;
    for (const auto& [z, list] : incoming) {
      (void)z;
      if (list.size() >= 2) {
        a0 = &list[0];
        a1 = &list[1];
        break;
      }
    }

    if (a0 == nullptr) {
      // Acyclic leaf: emit.
      ++leaves;
      ConjunctiveQuery result;
      std::map<int, int> var_of;
      LazyState* sp = &state;
      auto map_var = [&var_of, &result, &query, sp](int v) {
        int rep = sp->Find(v);
        auto it = var_of.find(rep);
        if (it != var_of.end()) return it->second;
        int nv = result.AddVar(query.var_names()[rep]);
        var_of.emplace(rep, nv);
        return nv;
      };
      for (const auto& [axis, x, y] : state.atoms) {
        int vx = map_var(x);
        int vy = map_var(y);
        result.AddAxisAtom(axis, vx, vy);
      }
      std::set<std::pair<std::string, int>> label_seen;
      for (const LabelAtom& a : query.label_atoms()) {
        int v = map_var(a.var);
        if (label_seen.insert({a.label, v}).second) {
          result.AddLabelAtom(a.label, v);
        }
      }
      for (int h : query.head_vars()) result.AddHeadVar(map_var(h));
      output.queries.push_back(std::move(result));
      continue;
    }

    const auto& [axis0, x0, z0] = *a0;
    const auto& [axis1, x1, z1] = *a1;
    TREEQ_CHECK(z0 == z1);
    // Star atoms in the conflict: split into "=" and "+" readings.
    if (IsStarAxis(axis0) || IsStarAxis(axis1)) {
      const auto& star = IsStarAxis(axis0) ? *a0 : *a1;
      const auto& [saxis, sx, sz] = star;
      LazyState merged = state;
      merged.atoms.erase(star);
      merged.uf[merged.Find(sx)] = merged.Find(sz);
      worklist.push_back(std::move(merged));
      LazyState strict = state;
      strict.atoms.erase(star);
      strict.atoms.insert({IsChildFamily(saxis) ? Axis::kDescendant
                                                : Axis::kFollowingSibling,
                           sx, sz});
      worklist.push_back(std::move(strict));
      continue;
    }
    // Both strict: we need the order between the two sources.
    auto resolve = [&](LazyState s, const std::tuple<Axis, int, int>& first,
                       const std::tuple<Axis, int, int>& second) {
      // first's source precedes second's source: Table 1 on (R, S).
      const auto& [raxis, rx, rz] = first;
      const auto& [saxis2, sy, sz2] = second;
      (void)sz2;
      if (!Table1Satisfiable(AsRewriteAxis(raxis), AsRewriteAxis(saxis2))) {
        return;  // dead branch
      }
      s.atoms.erase(first);
      s.atoms.insert({raxis, rx, sy});
      worklist.push_back(std::move(s));
    };
    if (x0 == x1) {
      // Same source with two different (post-normalization) atoms to the
      // same target can only be a cross-family conflict, which
      // NormalizeLazy already killed; same-family pairs were collapsed.
      TREEQ_CHECK(false);
      continue;
    }
    if (StrictlyBefore(state, x0, x1)) {
      resolve(std::move(state), *a0, *a1);
    } else if (StrictlyBefore(state, x1, x0)) {
      resolve(std::move(state), *a1, *a0);
    } else {
      // Branch three ways on the sources' relation.
      LazyState merged = state;
      merged.uf[merged.Find(x0)] = merged.Find(x1);
      worklist.push_back(std::move(merged));
      LazyState before = state;
      before.less.insert({x0, x1});
      resolve(std::move(before), *a0, *a1);
      LazyState after = std::move(state);
      after.less.insert({x1, x0});
      resolve(std::move(after), *a1, *a0);
    }
  }
  output.order_types_considered = leaves;
  return output;
}

Result<std::optional<ConjunctiveQuery>> RewriteChildNextSibling(
    const ConjunctiveQuery& input) {
  TREEQ_ASSIGN_OR_RETURN(Preprocessed pre, Preprocess(input));
  const ConjunctiveQuery& query = pre.query;
  for (Axis axis : query.AxesUsed()) {
    if (axis != Axis::kChild && axis != Axis::kNextSibling) {
      return Status::Unsupported(
          std::string("RewriteChildNextSibling supports only Child and "
                      "NextSibling; got ") +
          AxisName(axis));
    }
  }

  const int k = query.num_vars();
  VarUnion uf(k);
  // Atom set under rewriting; dedup via std::set.
  std::set<std::tuple<Axis, int, int>> atoms;
  for (const AxisAtom& a : query.axis_atoms()) {
    atoms.insert({a.axis, a.var0, a.var1});
  }

  auto canonicalize = [&]() {
    std::set<std::tuple<Axis, int, int>> next;
    for (const auto& [axis, x, y] : atoms) {
      next.insert({axis, uf.Find(x), uf.Find(y)});
    }
    atoms = std::move(next);
  };

  auto has_cycle = [&]() {
    // Every atom implies source <pre target, so any directed cycle is
    // unsatisfiable.
    std::map<int, std::vector<int>> adj;
    for (const auto& [axis, x, y] : atoms) {
      (void)axis;
      adj[x].push_back(y);
    }
    std::map<int, int> state;  // 0 new, 1 active, 2 done
    std::vector<std::pair<int, size_t>> stack;
    for (const auto& [start, _] : adj) {
      if (state[start] != 0) continue;
      stack.push_back({start, 0});
      state[start] = 1;
      while (!stack.empty()) {
        auto& [v, idx] = stack.back();
        auto it = adj.find(v);
        if (it == adj.end() || idx >= it->second.size()) {
          state[v] = 2;
          stack.pop_back();
          continue;
        }
        int w = it->second[idx++];
        if (state[w] == 1) return true;
        if (state[w] == 0) {
          state[w] = 1;
          stack.push_back({w, 0});
        }
      }
    }
    return false;
  };

  const int kMaxIterations = 4 * (static_cast<int>(atoms.size()) + 1) *
                             (k + 1) * (k + 1);
  for (int iter = 0; iter < kMaxIterations; ++iter) {
    canonicalize();
    // Irreflexivity.
    for (const auto& [axis, x, y] : atoms) {
      (void)axis;
      if (x == y) return std::optional<ConjunctiveQuery>();
    }
    if (has_cycle()) return std::optional<ConjunctiveQuery>();

    // Find a target with two distinct in-atoms.
    std::map<int, std::vector<std::tuple<Axis, int, int>>> incoming;
    for (const auto& atom : atoms) {
      incoming[std::get<2>(atom)].push_back(atom);
    }
    bool changed = false;
    for (const auto& [z, list] : incoming) {
      (void)z;
      if (list.size() < 2) continue;
      const auto& [axis_a, xa, za] = list[0];
      const auto& [axis_b, xb, zb] = list[1];
      TREEQ_CHECK(za == zb);
      if (axis_a == axis_b) {
        // Child is backward-functional; so is NextSibling: sources equal.
        uf.Union(xa, xb);
      } else {
        // One Child atom, one NextSibling atom: the parent of z is also
        // the parent of z's previous sibling.
        if (axis_a == Axis::kChild) {
          atoms.erase({axis_a, xa, za});
          atoms.insert({Axis::kChild, xa, xb});
        } else {
          atoms.erase({axis_b, xb, zb});
          atoms.insert({Axis::kChild, xb, xa});
        }
      }
      changed = true;
      break;
    }
    if (!changed) {
      // Fixpoint: emit the acyclic query over the unified variables.
      ConjunctiveQuery result;
      std::map<int, int> var_of;
      auto map_var = [&](int v) {
        int rep = uf.Find(v);
        auto it = var_of.find(rep);
        if (it != var_of.end()) return it->second;
        int nv = result.AddVar(query.var_names()[rep]);
        var_of.emplace(rep, nv);
        return nv;
      };
      for (const auto& [axis, x, y] : atoms) {
        result.AddAxisAtom(axis, map_var(x), map_var(y));
      }
      std::set<std::pair<std::string, int>> label_seen;
      for (const LabelAtom& a : query.label_atoms()) {
        int v = map_var(a.var);
        if (label_seen.insert({a.label, v}).second) {
          result.AddLabelAtom(a.label, v);
        }
      }
      for (int h : query.head_vars()) result.AddHeadVar(map_var(h));
      // Isolated variables (all of whose atoms were dropped) must still be
      // registered so head vars resolve.
      return std::optional<ConjunctiveQuery>(std::move(result));
    }
  }
  return Status::Internal("RewriteChildNextSibling failed to converge");
}

}  // namespace cq
}  // namespace treeq
