#ifndef TREEQ_CQ_PARSER_H_
#define TREEQ_CQ_PARSER_H_

#include <string_view>

#include "cq/ast.h"
#include "util/status.h"

/// \file parser.h
/// Rule-notation syntax for conjunctive queries:
///
///   Q(x, z) :- Child+(x, y), NextSibling(y, z), Lab_a(y), Label("b", z).
///   Q()     :- Following(x, y), Lab_a(x), Lab_a(y).     % Boolean
///
/// Axis names are those of ParseAxis; Lab_<name>(v) and Label("<any>", v)
/// are label atoms; `%`/`#` start comments.

namespace treeq {
namespace cq {

Result<ConjunctiveQuery> ParseCq(std::string_view input);

}  // namespace cq
}  // namespace treeq

#endif  // TREEQ_CQ_PARSER_H_
