#ifndef TREEQ_CQ_X_PROPERTY_H_
#define TREEQ_CQ_X_PROPERTY_H_

#include <optional>
#include <utility>
#include <vector>

#include "cq/arc_consistency.h"
#include "cq/ast.h"
#include "tree/orders.h"
#include "util/status.h"

/// \file x_property.h
/// The X-underbar property (Definition 6.3, [45]) and the Theorem 6.5
/// evaluator built on it: on structures whose binary relations all have the
/// X-property w.r.t. a total order <, the minimum valuation of the maximal
/// arc-consistent pre-valuation is consistent (Lemma 6.4), so Boolean
/// conjunctive queries evaluate in O(||A|| * |Q|).
///
/// Proposition 6.6 fixes which axes have the property for which tree order:
///   <pre  : Child+, Child*                                   (tau_1)
///   <post : Following                                        (tau_2)
///   <bflr : Child, NextSibling, NextSibling*, NextSibling+   (tau_3)
/// (plus Self, trivially, for any order). This list is complete, which is
/// what drives the Theorem 6.8 dichotomy (dichotomy.h).

namespace treeq {
namespace cq {

/// The three candidate total orders of the paper.
enum class TreeOrder { kPre, kPost, kBflr };

const char* TreeOrderName(TreeOrder order);

/// rank[v] = position of node v in the order.
const std::vector<int>& RankOf(const TreeOrders& orders, TreeOrder order);

/// Definition 6.3 on an explicit relation: for all n0 < n1, n2 < n3,
/// R(n1, n2) and R(n0, n3) imply R(n0, n2). O(|R|^2) check.
bool HasXProperty(const std::vector<std::pair<NodeId, NodeId>>& relation,
                  const std::vector<int>& rank);

/// Definition 6.3 for an axis over a concrete tree (materializes the axis).
bool AxisHasXPropertyOn(const Tree& tree, const TreeOrders& orders, Axis axis,
                        TreeOrder order);

/// The Proposition 6.6 table: does `axis` have the X-property w.r.t.
/// `order` on every tree? (Inverse axes are classified via their canonical
/// counterparts' semantics, i.e. they generally do NOT inherit the
/// property.)
bool XPropertyHolds(Axis axis, TreeOrder order);

/// Picks an order under which every axis of `query` has the X-property
/// (after inverse-axis normalization), or nullopt if none exists — the
/// tractability test of the dichotomy.
std::optional<TreeOrder> PickXOrder(const ConjunctiveQuery& query);

/// Lemma 6.4: the minimum valuation of `theta` w.r.t. the order.
std::vector<NodeId> MinimumValuation(const PreValuation& theta,
                                     const std::vector<int>& rank);

/// Result of EvaluateXProperty: satisfiability plus, if satisfiable, the
/// witness valuation (indexed by query variable).
struct XEvalResult {
  bool satisfiable = false;
  std::vector<NodeId> witness;
};

/// Theorem 6.5: evaluates the Boolean query via arc-consistency + minimum
/// valuation. Requires every axis of `query` (inverse-normalized) to have
/// the X-property w.r.t. `order`; InvalidArgument otherwise.
Result<XEvalResult> EvaluateXProperty(
    const ConjunctiveQuery& query, const Tree& tree, const TreeOrders& orders,
    TreeOrder order,
    AcImplementation ac = AcImplementation::kDirect);

/// Membership check for a k-ary query: is `tuple` in the result? Realized
/// as in Section 6 by adding singleton unary relations and evaluating the
/// Boolean query.
Result<bool> XPropertyTupleCheck(const ConjunctiveQuery& query,
                                 const Tree& tree, const TreeOrders& orders,
                                 TreeOrder order,
                                 const std::vector<NodeId>& tuple);

}  // namespace cq
}  // namespace treeq

#endif  // TREEQ_CQ_X_PROPERTY_H_
