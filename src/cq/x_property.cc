#include "cq/x_property.h"

#include <algorithm>

namespace treeq {
namespace cq {

const char* TreeOrderName(TreeOrder order) {
  switch (order) {
    case TreeOrder::kPre:
      return "<pre";
    case TreeOrder::kPost:
      return "<post";
    case TreeOrder::kBflr:
      return "<bflr";
  }
  return "";
}

const std::vector<int>& RankOf(const TreeOrders& orders, TreeOrder order) {
  switch (order) {
    case TreeOrder::kPre:
      return orders.pre;
    case TreeOrder::kPost:
      return orders.post;
    case TreeOrder::kBflr:
      return orders.bflr;
  }
  TREEQ_CHECK(false);
  return orders.pre;
}

bool HasXProperty(const std::vector<std::pair<NodeId, NodeId>>& relation,
                  const std::vector<int>& rank) {
  // For crossing arcs (n1, n2), (n0, n3) with n0 < n1 and n2 < n3, the
  // "underbar" arc (n0, n2) must be present.
  auto contains = [&relation](NodeId a, NodeId b) {
    return std::find(relation.begin(), relation.end(),
                     std::make_pair(a, b)) != relation.end();
  };
  for (const auto& [n1, n2] : relation) {
    for (const auto& [n0, n3] : relation) {
      if (rank[n0] < rank[n1] && rank[n2] < rank[n3] && !contains(n0, n2)) {
        return false;
      }
    }
  }
  return true;
}

bool AxisHasXPropertyOn(const Tree& tree, const TreeOrders& orders, Axis axis,
                        TreeOrder order) {
  return HasXProperty(MaterializeAxis(tree, orders, axis),
                      RankOf(orders, order));
}

bool XPropertyHolds(Axis axis, TreeOrder order) {
  // Self holds trivially under any order (the premise of Definition 6.3 is
  // unsatisfiable for a subset of the identity).
  if (axis == Axis::kSelf) return true;
  switch (order) {
    case TreeOrder::kPre:
      // tau_1 (Proposition 6.6(1)). FirstChild also holds: a first child is
      // always its parent's immediate <pre successor, so FirstChild pairs
      // are (i, i+1) and crossing arcs cannot exist.
      return axis == Axis::kDescendant || axis == Axis::kDescendantOrSelf ||
             axis == Axis::kFirstChild;
    case TreeOrder::kPost:
      // tau_2 (Proposition 6.6(2)).
      return axis == Axis::kFollowing;
    case TreeOrder::kBflr:
      // tau_3 (Proposition 6.6(3)); FirstChild holds as well because it is
      // monotone in <bflr, making crossing arcs impossible.
      return axis == Axis::kChild || axis == Axis::kNextSibling ||
             axis == Axis::kFollowingSiblingOrSelf ||
             axis == Axis::kFollowingSibling || axis == Axis::kFirstChild;
  }
  return false;
}

std::optional<TreeOrder> PickXOrder(const ConjunctiveQuery& query) {
  ConjunctiveQuery normalized = query;
  normalized.NormalizeInverseAxes();
  for (TreeOrder order :
       {TreeOrder::kPre, TreeOrder::kPost, TreeOrder::kBflr}) {
    bool all = true;
    for (Axis axis : normalized.AxesUsed()) {
      if (!XPropertyHolds(axis, order)) {
        all = false;
        break;
      }
    }
    if (all) return order;
  }
  return std::nullopt;
}

std::vector<NodeId> MinimumValuation(const PreValuation& theta,
                                     const std::vector<int>& rank) {
  std::vector<NodeId> valuation(theta.size(), kNullNode);
  for (size_t x = 0; x < theta.size(); ++x) {
    NodeId best = kNullNode;
    for (NodeId v = 0; v < theta[x].universe(); ++v) {
      if (theta[x].Contains(v) && (best == kNullNode || rank[v] < rank[best])) {
        best = v;
      }
    }
    valuation[x] = best;
  }
  return valuation;
}

namespace {

bool ValuationSatisfies(const ConjunctiveQuery& query, const Tree& tree,
                        const TreeOrders& orders,
                        const std::vector<NodeId>& valuation) {
  for (const LabelAtom& a : query.label_atoms()) {
    if (!tree.HasLabel(valuation[a.var], a.label)) return false;
  }
  for (const AxisAtom& a : query.axis_atoms()) {
    if (!AxisHolds(tree, orders, a.axis, valuation[a.var0],
                   valuation[a.var1])) {
      return false;
    }
  }
  return true;
}

}  // namespace

Result<XEvalResult> EvaluateXProperty(const ConjunctiveQuery& query,
                                      const Tree& tree,
                                      const TreeOrders& orders, TreeOrder order,
                                      AcImplementation ac) {
  TREEQ_RETURN_IF_ERROR(query.Validate());
  ConjunctiveQuery normalized = query;
  normalized.NormalizeInverseAxes();
  for (Axis axis : normalized.AxesUsed()) {
    if (!XPropertyHolds(axis, order)) {
      return Status::InvalidArgument(
          std::string("axis ") + AxisName(axis) +
          " lacks the X-property w.r.t. " + TreeOrderName(order));
    }
  }
  AcResult acr = ComputeMaxArcConsistent(normalized, tree, orders, ac);
  XEvalResult result;
  if (!acr.consistent) {
    result.satisfiable = false;
    return result;
  }
  // Lemma 6.4: the minimum valuation is consistent.
  result.witness = MinimumValuation(acr.theta, RankOf(orders, order));
  if (!ValuationSatisfies(normalized, tree, orders, result.witness)) {
    return Status::Internal(
        "minimum valuation not consistent — Lemma 6.4 violated (bug)");
  }
  result.satisfiable = true;
  return result;
}

Result<bool> XPropertyTupleCheck(const ConjunctiveQuery& query,
                                 const Tree& tree, const TreeOrders& orders,
                                 TreeOrder order,
                                 const std::vector<NodeId>& tuple) {
  if (tuple.size() != query.head_vars().size()) {
    return Status::InvalidArgument("tuple arity mismatch");
  }
  ConjunctiveQuery normalized = query;
  normalized.NormalizeInverseAxes();
  for (Axis axis : normalized.AxesUsed()) {
    if (!XPropertyHolds(axis, order)) {
      return Status::InvalidArgument(
          std::string("axis ") + AxisName(axis) +
          " lacks the X-property w.r.t. " + TreeOrderName(order));
    }
  }
  // Singleton relations X_i = {a_i} (Section 6), expressed as an initial
  // pre-valuation restriction.
  PreValuation initial(normalized.num_vars(),
                       NodeSet::All(tree.num_nodes()));
  for (size_t i = 0; i < tuple.size(); ++i) {
    NodeSet singleton =
        NodeSet::Singleton(tree.num_nodes(), tuple[i]);
    initial[normalized.head_vars()[i]].IntersectWith(singleton);
  }
  AcResult acr = ComputeMaxArcConsistent(normalized, tree, orders,
                                         AcImplementation::kDirect, &initial);
  if (!acr.consistent) return false;
  std::vector<NodeId> witness =
      MinimumValuation(acr.theta, RankOf(orders, order));
  if (!ValuationSatisfies(normalized, tree, orders, witness)) {
    return Status::Internal(
        "minimum valuation not consistent — Lemma 6.4 violated (bug)");
  }
  return true;
}

}  // namespace cq
}  // namespace treeq
