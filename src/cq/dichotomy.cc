#include "cq/dichotomy.h"

#include "cq/naive.h"

namespace treeq {
namespace cq {

const char* SignatureClassName(SignatureClass c) {
  switch (c) {
    case SignatureClass::kTau1:
      return "tau1 (<pre)";
    case SignatureClass::kTau2:
      return "tau2 (<post)";
    case SignatureClass::kTau3:
      return "tau3 (<bflr)";
    case SignatureClass::kNpHard:
      return "NP-hard";
  }
  return "";
}

SignatureClass ClassifySignature(const std::vector<Axis>& axes) {
  // Normalize inverses to their base axes for classification.
  auto canonical = [](Axis a) {
    switch (a) {
      case Axis::kParent:
      case Axis::kAncestor:
      case Axis::kAncestorOrSelf:
      case Axis::kPrevSibling:
      case Axis::kPrecedingSibling:
      case Axis::kPrecedingSiblingOrSelf:
      case Axis::kPreceding:
      case Axis::kFirstChildInv:
        return InverseAxis(a);
      default:
        return a;
    }
  };
  for (TreeOrder order :
       {TreeOrder::kPre, TreeOrder::kPost, TreeOrder::kBflr}) {
    bool all = true;
    for (Axis a : axes) {
      if (!XPropertyHolds(canonical(a), order)) {
        all = false;
        break;
      }
    }
    if (all) {
      switch (order) {
        case TreeOrder::kPre:
          return SignatureClass::kTau1;
        case TreeOrder::kPost:
          return SignatureClass::kTau2;
        case TreeOrder::kBflr:
          return SignatureClass::kTau3;
      }
    }
  }
  return SignatureClass::kNpHard;
}

std::optional<TreeOrder> OrderForClass(SignatureClass c) {
  switch (c) {
    case SignatureClass::kTau1:
      return TreeOrder::kPre;
    case SignatureClass::kTau2:
      return TreeOrder::kPost;
    case SignatureClass::kTau3:
      return TreeOrder::kBflr;
    case SignatureClass::kNpHard:
      return std::nullopt;
  }
  return std::nullopt;
}

Result<bool> EvaluateBooleanDichotomy(const ConjunctiveQuery& query,
                                      const Tree& tree,
                                      const TreeOrders& orders,
                                      bool* used_tractable_path,
                                      const ExecContext& exec) {
  ConjunctiveQuery normalized = query;
  normalized.NormalizeInverseAxes();
  SignatureClass c = ClassifySignature(normalized.AxesUsed());
  std::optional<TreeOrder> order = OrderForClass(c);
  if (order.has_value()) {
    if (used_tractable_path != nullptr) *used_tractable_path = true;
    // The X-property pass is polynomial; charge it as one unit of work per
    // node-variable pair and check the limits once up front.
    TREEQ_RETURN_IF_ERROR(exec.Charge(
        1 + static_cast<uint64_t>(tree.num_nodes()) * query.num_vars()));
    TREEQ_ASSIGN_OR_RETURN(
        XEvalResult result,
        EvaluateXProperty(normalized, tree, orders, *order));
    return result.satisfiable;
  }
  if (used_tractable_path != nullptr) *used_tractable_path = false;
  return NaiveSatisfiableCq(normalized, tree, orders, UINT64_MAX,
                            /*stats=*/nullptr, exec);
}

}  // namespace cq
}  // namespace treeq
