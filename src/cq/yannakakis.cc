#include "cq/yannakakis.h"

#include <vector>

namespace treeq {
namespace cq {

namespace {

/// Candidate sets restricted by the unary atoms. With a label index, each
/// atom is a word-wise intersection with the document's cached per-label
/// bitmap; without one, the historic O(k * n) arena scan.
PreValuation LabelRestrictedCandidates(const ConjunctiveQuery& query,
                                       const Tree& tree,
                                       const LabelIndex* index) {
  const int n = tree.num_nodes();
  PreValuation cand(query.num_vars(), NodeSet::All(n));
  for (const LabelAtom& a : query.label_atoms()) {
    if (index != nullptr) {
      const LabelId id = tree.label_table().Lookup(a.label);
      if (id == kNullLabel) {
        cand[a.var] = NodeSet(n);  // no node carries an unknown label
      } else {
        cand[a.var].IntersectWith(index->Set(id));
      }
      continue;
    }
    for (NodeId v = 0; v < n; ++v) {
      if (cand[a.var].Contains(v) && !tree.HasLabel(v, a.label)) {
        cand[a.var].Erase(v);
      }
    }
  }
  return cand;
}

}  // namespace

Result<ReducedQuery> FullReducer(const ConjunctiveQuery& query,
                                 const Tree& tree, const TreeOrders& orders,
                                 int root_var, const LabelIndex* index,
                                 AxisImageMemo* memo) {
  TREEQ_RETURN_IF_ERROR(query.Validate());
  if (!query.IsTreeShaped()) {
    return Status::InvalidArgument(
        "FullReducer requires a tree-shaped (connected, acyclic, simple) "
        "query: " +
        query.ToString());
  }
  if (root_var == -1) root_var = 0;
  if (root_var < 0 || root_var >= query.num_vars()) {
    return Status::InvalidArgument("root variable out of range");
  }
  const int n = tree.num_nodes();
  const int k = query.num_vars();

  // Orient the query tree away from the root: BFS over the (simple) graph.
  struct HalfEdge {
    int to;
    Axis axis;  // oriented from -> to
  };
  std::vector<std::vector<HalfEdge>> adj(k);
  for (const AxisAtom& a : query.axis_atoms()) {
    adj[a.var0].push_back({a.var1, a.axis});
    adj[a.var1].push_back({a.var0, InverseAxis(a.axis)});
  }
  ReducedQuery reduced;
  reduced.parent_var.assign(k, -1);
  reduced.parent_axis.assign(k, Axis::kSelf);
  std::vector<int> bfs_order;
  std::vector<char> seen(k, 0);
  bfs_order.push_back(root_var);
  seen[root_var] = 1;
  for (size_t head = 0; head < bfs_order.size(); ++head) {
    int v = bfs_order[head];
    for (const HalfEdge& e : adj[v]) {
      if (!seen[e.to]) {
        seen[e.to] = 1;
        reduced.parent_var[e.to] = v;
        reduced.parent_axis[e.to] = e.axis;
        bfs_order.push_back(e.to);
      }
    }
  }
  TREEQ_CHECK(static_cast<int>(bfs_order.size()) == k);  // connected

  reduced.candidates = LabelRestrictedCandidates(query, tree, index);

  // Bottom-up pass (the Yannakakis semijoin sweep toward the root): each
  // parent keeps only values with a partner in every child's candidate set.
  // Both sweeps route through AxisImageMemoized, so with a memo attached
  // repeated twigs over one document reuse each other's semijoin images.
  NodeSet image(n);
  for (int i = k - 1; i >= 1; --i) {
    int v = bfs_order[i];
    int p = reduced.parent_var[v];
    // p -- axis --> v; keep u in cand[p] iff exists w in cand[v] with
    // axis(u, w), i.e. u in image of cand[v] under axis^-1.
    AxisImageMemoized(tree, orders, InverseAxis(reduced.parent_axis[v]),
                      reduced.candidates[v], &image, memo);
    reduced.candidates[p].IntersectWith(image);
  }
  // Top-down pass: children keep only values reachable from the parent.
  for (int i = 1; i < k; ++i) {
    int v = bfs_order[i];
    int p = reduced.parent_var[v];
    AxisImageMemoized(tree, orders, reduced.parent_axis[v],
                      reduced.candidates[p], &image, memo);
    reduced.candidates[v].IntersectWith(image);
  }

  reduced.satisfiable = true;
  for (const NodeSet& set : reduced.candidates) {
    if (set.empty()) reduced.satisfiable = false;
  }
  return reduced;
}

Result<bool> EvaluateBooleanAcyclic(const ConjunctiveQuery& query,
                                    const Tree& tree,
                                    const TreeOrders& orders) {
  TREEQ_ASSIGN_OR_RETURN(ReducedQuery reduced,
                         FullReducer(query, tree, orders));
  return reduced.satisfiable;
}

Result<bool> EvaluateBooleanAcyclicForest(const ConjunctiveQuery& query,
                                          const Tree& tree,
                                          const TreeOrders& orders) {
  TREEQ_RETURN_IF_ERROR(query.Validate());
  // Split into connected components and run the reducer on each.
  const int k = query.num_vars();
  std::vector<int> comp(k, -1);
  std::vector<std::vector<int>> adj(k);
  for (const AxisAtom& a : query.axis_atoms()) {
    adj[a.var0].push_back(a.var1);
    adj[a.var1].push_back(a.var0);
  }
  int num_components = 0;
  for (int v = 0; v < k; ++v) {
    if (comp[v] != -1) continue;
    std::vector<int> stack = {v};
    comp[v] = num_components;
    while (!stack.empty()) {
      int u = stack.back();
      stack.pop_back();
      for (int w : adj[u]) {
        if (comp[w] == -1) {
          comp[w] = num_components;
          stack.push_back(w);
        }
      }
    }
    ++num_components;
  }
  for (int c = 0; c < num_components; ++c) {
    ConjunctiveQuery sub;
    std::vector<int> local(k, -1);
    for (int v = 0; v < k; ++v) {
      if (comp[v] == c) local[v] = sub.AddVar(query.var_names()[v]);
    }
    for (const AxisAtom& a : query.axis_atoms()) {
      if (comp[a.var0] == c) {
        sub.AddAxisAtom(a.axis, local[a.var0], local[a.var1]);
      }
    }
    for (const LabelAtom& a : query.label_atoms()) {
      if (comp[a.var] == c) sub.AddLabelAtom(a.label, local[a.var]);
    }
    TREEQ_ASSIGN_OR_RETURN(bool satisfiable,
                           EvaluateBooleanAcyclic(sub, tree, orders));
    if (!satisfiable) return false;
  }
  return true;
}

Result<NodeSet> EvaluateUnaryAcyclic(const ConjunctiveQuery& query,
                                     const Tree& tree,
                                     const TreeOrders& orders) {
  if (query.head_vars().size() != 1) {
    return Status::InvalidArgument("query is not unary");
  }
  TREEQ_ASSIGN_OR_RETURN(
      ReducedQuery reduced,
      FullReducer(query, tree, orders, query.head_vars()[0]));
  if (!reduced.satisfiable) return NodeSet(tree.num_nodes());
  return reduced.candidates[query.head_vars()[0]];
}

}  // namespace cq
}  // namespace treeq
