#include "cq/par_twig.h"

#include <algorithm>
#include <chrono>
#include <functional>
#include <memory>
#include <vector>

#include "obs/obs.h"

namespace treeq {
namespace cq {

namespace {

uint64_t NowNs() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

uint64_t Share(uint64_t remaining, int k) {
  if (remaining == UINT64_MAX) return UINT64_MAX;
  const uint64_t share = remaining / static_cast<uint64_t>(k);
  return share > 0 ? share : 1;
}

/// The sub-stream of `stream` whose pre ranks lie in [begin_pre, end_pre).
std::vector<JoinItem> Window(const std::vector<JoinItem>& stream,
                             int begin_pre, int end_pre) {
  const auto lo = std::lower_bound(
      stream.begin(), stream.end(), begin_pre,
      [](const JoinItem& item, int pre) { return item.pre < pre; });
  const auto hi = std::lower_bound(
      lo, stream.end(), end_pre,
      [](const JoinItem& item, int pre) { return item.pre < pre; });
  return std::vector<JoinItem>(lo, hi);
}

}  // namespace

Result<TupleSet> ParTwigStackJoin(const TwigPattern& pattern,
                                  const Document& doc,
                                  const par::ParOptions& options,
                                  const ExecContext& exec, TwigStats* stats,
                                  par::ParStats* par_stats) {
  TREEQ_RETURN_IF_ERROR(pattern.Validate());
  const Tree& tree = doc.tree();
  const LabelIndex& index = doc.label_index();

  // Per-pattern-node streams from the document's cached label index.
  std::vector<const std::vector<JoinItem>*> streams;
  streams.reserve(pattern.nodes.size());
  for (const TwigPatternNode& node : pattern.nodes) {
    LabelId label = tree.label_table().Lookup(node.label);
    streams.push_back(&index.Items(label));
  }
  const std::vector<JoinItem>& roots = *streams[0];

  const int k = options.parallelism;
  if (k < 2 || options.runner == nullptr ||
      roots.size() < static_cast<size_t>(options.min_context)) {
    return TwigStackJoinStreams(pattern, streams, stats, exec);
  }

  // Contiguous root-stream chunks: every match is owned by exactly one
  // chunk (the one holding its root assignment), so chunk tuple sets are
  // disjoint and their union is the serial match set.
  const size_t chunk =
      (roots.size() + static_cast<size_t>(k) - 1) / static_cast<size_t>(k);
  struct Slot {
    size_t begin = 0;
    size_t end = 0;
    std::shared_ptr<ExecContext> child;
    std::vector<std::vector<JoinItem>> windows;  // non-root sub-streams
    TwigStats stats;
    Result<TupleSet> result{TupleSet{}};
  };
  std::vector<Slot> slots;
  for (size_t begin = 0; begin < roots.size(); begin += chunk) {
    Slot slot;
    slot.begin = begin;
    slot.end = std::min(roots.size(), begin + chunk);
    slots.push_back(std::move(slot));
  }
  const int degree = static_cast<int>(slots.size());
  TREEQ_OBS_INC("par.forks");
  TREEQ_OBS_COUNT("par.tasks", static_cast<uint64_t>(degree));
  const uint64_t visit_share = Share(exec.RemainingVisits(), degree);
  const uint64_t memory_share = Share(exec.RemainingMemory(), degree);

  std::vector<std::function<void()>> tasks;
  tasks.reserve(slots.size());
  for (Slot& slot : slots) {
    slot.child = exec.Fork(visit_share, memory_share);
    tasks.push_back([&pattern, &streams, &roots, &slot] {
      // Matched non-root elements sit inside a chunk root's subtree, so
      // [first root's pre, max subtree end over the chunk's roots) covers
      // every stream item any chunk match can use.
      const int win_begin = roots[slot.begin].pre;
      int win_end = 0;
      for (size_t i = slot.begin; i < slot.end; ++i) {
        win_end = std::max(win_end, roots[i].end);
      }
      slot.windows.reserve(streams.size());
      slot.windows.emplace_back(
          roots.begin() + static_cast<ptrdiff_t>(slot.begin),
          roots.begin() + static_cast<ptrdiff_t>(slot.end));
      uint64_t total = slot.windows.back().size();
      for (size_t i = 1; i < streams.size(); ++i) {
        slot.windows.push_back(Window(*streams[i], win_begin, win_end));
        total += slot.windows.back().size();
      }
      Status charge = slot.child->Charge(1 + total);
      if (!charge.ok()) {
        slot.result = charge;
        return;
      }
      std::vector<const std::vector<JoinItem>*> chunk_streams;
      chunk_streams.reserve(slot.windows.size());
      for (const std::vector<JoinItem>& w : slot.windows) {
        chunk_streams.push_back(&w);
      }
      slot.result = TwigStackJoinStreams(pattern, chunk_streams, &slot.stats,
                                         *slot.child);
    });
  }

  const uint64_t fork_start = NowNs();
  options.runner->RunAll(std::move(tasks));
  const uint64_t merge_start = NowNs();

  TupleSet out;
  Status first_error;
  for (Slot& slot : slots) {
    exec.AbsorbChildUsage(*slot.child);
    if (stats != nullptr) {
      stats->intermediate_results += slot.stats.intermediate_results;
      stats->path_solutions += slot.stats.path_solutions;
    }
    if (first_error.ok() && !slot.result.ok()) {
      first_error = slot.result.status();
    }
    if (slot.result.ok()) {
      TupleSet& tuples = slot.result.value();
      out.insert(out.end(), std::make_move_iterator(tuples.begin()),
                 std::make_move_iterator(tuples.end()));
    }
  }
  // Chunk results are disjoint (distinct root assignments); one final
  // canonicalization reproduces the serial canonical tuple order.
  CanonicalizeTuples(&out);
  const uint64_t merge_end = NowNs();
  if (par_stats != nullptr) {
    par::ParStats local;
    local.partitions = degree;
    local.parallel_ns = merge_start - fork_start;
    local.merge_ns = merge_end - merge_start;
    par_stats->Accumulate(local);
  }
  TREEQ_OBS_HISTOGRAM("par.parallel_ns", merge_start - fork_start);
  TREEQ_OBS_HISTOGRAM("par.merge_ns", merge_end - merge_start);
  if (!first_error.ok()) return first_error;
  TREEQ_RETURN_IF_ERROR(exec.CheckNow());
  TREEQ_OBS_COUNT("cq.twig.output_tuples", out.size());
  return out;
}

}  // namespace cq
}  // namespace treeq
