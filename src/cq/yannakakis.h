#ifndef TREEQ_CQ_YANNAKAKIS_H_
#define TREEQ_CQ_YANNAKAKIS_H_

#include "cq/arc_consistency.h"
#include "cq/ast.h"
#include "tree/axes.h"
#include "tree/label_index.h"
#include "tree/orders.h"
#include "util/status.h"

/// \file yannakakis.h
/// Yannakakis' algorithm for acyclic conjunctive queries ([77], Section 4),
/// specialized to trees: for a tree-shaped query the join tree is the query
/// tree itself, and every semijoin against an axis relation is an O(n) axis
/// set-image — which is how the unary conjunctive Core XPath queries run in
/// O(||A|| * |Q|) (Proposition 4.2) without ever materializing quadratic
/// axis relations.
///
/// FullReducer performs the bottom-up + top-down semijoin passes. Its
/// output candidate sets are globally consistent: every candidate value
/// participates in at least one solution (the full-reducer property restated
/// as Proposition 6.9). enumerate.h reads solutions out of them.

namespace treeq {
namespace cq {

/// A fully reduced query: per-variable candidate sets in which every value
/// extends to a solution. `satisfiable` is false iff some set is empty.
struct ReducedQuery {
  bool satisfiable = false;
  PreValuation candidates;
  /// The query tree used: parent variable of each variable (-1 at the
  /// root), in the rooting chosen by the reducer.
  std::vector<int> parent_var;
  /// The axis relating parent_var[v] to v, oriented parent -> v.
  std::vector<Axis> parent_axis;
};

/// Runs the full reducer. Requires query.IsTreeShaped() (see
/// ConjunctiveQuery::IsTreeShaped; parallel edges would need relation-level
/// — not set-level — reduction and are rejected). `root_var` selects the
/// rooting; pass -1 for variable 0, or a head variable so unary results can
/// be read from the root's candidate set.
///
/// Cross-query reuse hooks (both optional, both preserving bit-identical
/// candidate sets): `index`, when set, seeds the label-restricted
/// candidate sets from the document's cached per-label NodeSets
/// (tree/label_index.h) — one word-wise intersection per label atom
/// instead of an O(n) arena scan — and `memo` (tree/axes.h) memoizes the
/// axis images of the bottom-up and top-down semijoin sweeps, so repeated
/// twigs over one document reuse each other's reductions.
Result<ReducedQuery> FullReducer(const ConjunctiveQuery& query,
                                 const Tree& tree, const TreeOrders& orders,
                                 int root_var = -1,
                                 const LabelIndex* index = nullptr,
                                 AxisImageMemo* memo = nullptr);

/// Boolean acyclic evaluation in O(||A|| * |Q|) (Theorem 4.1's tree case).
Result<bool> EvaluateBooleanAcyclic(const ConjunctiveQuery& query,
                                    const Tree& tree,
                                    const TreeOrders& orders);

/// Unary acyclic evaluation in O(||A|| * |Q|) (Proposition 4.2): the head
/// variable's fully-reduced candidate set.
Result<NodeSet> EvaluateUnaryAcyclic(const ConjunctiveQuery& query,
                                     const Tree& tree,
                                     const TreeOrders& orders);

/// Boolean evaluation of forest-shaped queries (each connected component
/// tree-shaped; components may be disconnected): satisfiable iff every
/// component is. This is what the Theorem 5.1 rewriting outputs feed into
/// (Corollary 5.2's linear-time positive-FO pipeline).
Result<bool> EvaluateBooleanAcyclicForest(const ConjunctiveQuery& query,
                                          const Tree& tree,
                                          const TreeOrders& orders);

}  // namespace cq
}  // namespace treeq

#endif  // TREEQ_CQ_YANNAKAKIS_H_
