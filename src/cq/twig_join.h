#ifndef TREEQ_CQ_TWIG_JOIN_H_
#define TREEQ_CQ_TWIG_JOIN_H_

#include <cstdint>
#include <string>
#include <vector>

#include "cq/ast.h"
#include "tree/document.h"
#include "tree/label_index.h"
#include "tree/orders.h"
#include "util/exec_context.h"
#include "util/status.h"

/// \file twig_join.h
/// Holistic twig joins ([13, 48], Section 6): matching a tree pattern
/// ("twig") against a document by processing all structural joins at once
/// over document-ordered label streams and per-pattern-node stacks, instead
/// of materializing binary-join intermediate results. Section 6 points out
/// that this is an instance of arc-consistency-based processing; the
/// stacks compactly encode the consistent candidates.
///
/// TwigStackJoin implements the TwigStack algorithm (getNext stream
/// alignment, stack discipline, path-solution emission, final merge).
/// TwigByStructuralJoins is the binary-join baseline it was proposed to
/// beat; both report intermediate-result counts for the benches.

namespace treeq {
namespace cq {

/// One node of a twig pattern.
struct TwigPatternNode {
  /// Label the matched document node must carry.
  std::string label;
  /// Relation to the parent pattern node: Axis::kChild or
  /// Axis::kDescendant. Ignored for the root.
  Axis edge = Axis::kDescendant;
  /// Parent pattern node (-1 for the root, which must be node 0).
  int parent = -1;
};

/// A twig pattern: node 0 is the root; parents precede children.
struct TwigPattern {
  std::vector<TwigPatternNode> nodes;

  Status Validate() const;
  std::vector<int> Children(int node) const;
  std::vector<int> Leaves() const;
  bool IsPath() const;

  /// The equivalent conjunctive query (head = all pattern nodes, in order).
  ConjunctiveQuery ToConjunctiveQuery() const;

  /// "catalog//product[/name]//rating5"-ish rendering for logs.
  std::string ToString() const;
};

/// Work counters for the benches.
struct TwigStats {
  /// Elements pushed on stacks (TwigStack) or intermediate join-result
  /// tuples (structural-join baseline).
  uint64_t intermediate_results = 0;
  /// Root-to-leaf path solutions emitted before the merge (TwigStack only).
  uint64_t path_solutions = 0;
};

/// TwigStack: all matches of `pattern`, one tuple per match with arity
/// |pattern| (tuple[i] = document node matched by pattern node i).
///
/// Label streams come from `index` (tree/label_index.h): one index build
/// serves every pattern node, instead of one arena scan + sort per node.
/// The (tree, orders) overload builds a throwaway index; the Document
/// overload reuses the document's cached one.
///
/// Both algorithms charge the ExecContext per stream advance / stack push /
/// solution emitted (and the intermediate tuples against the memory
/// budget), so skew-blown joins abort instead of running away.
Result<TupleSet> TwigStackJoin(const TwigPattern& pattern, const Tree& tree,
                               const TreeOrders& orders,
                               const LabelIndex& index,
                               TwigStats* stats = nullptr,
                               const ExecContext& exec =
                                   ExecContext::Unbounded());
Result<TupleSet> TwigStackJoin(const TwigPattern& pattern, const Tree& tree,
                               const TreeOrders& orders,
                               TwigStats* stats = nullptr,
                               const ExecContext& exec =
                                   ExecContext::Unbounded());
Result<TupleSet> TwigStackJoin(const TwigPattern& pattern,
                               const Document& doc,
                               TwigStats* stats = nullptr,
                               const ExecContext& exec =
                                   ExecContext::Unbounded());

/// TwigStack over caller-supplied per-pattern-node streams (one per
/// pattern node, document-ordered, as LabelIndex::Items returns them).
/// This is the pluggable-stream seam the partition-parallel twig join
/// (cq/par_twig.h) uses to run one TwigStack instance per root-stream
/// chunk against windowed non-root streams. `streams[i]` must outlive the
/// call and must be sorted by pre.
Result<TupleSet> TwigStackJoinStreams(
    const TwigPattern& pattern,
    const std::vector<const std::vector<JoinItem>*>& streams,
    TwigStats* stats = nullptr,
    const ExecContext& exec = ExecContext::Unbounded());

/// Baseline: decompose the twig into binary (parent, child) structural
/// joins, evaluate each with the stack-tree merge of storage/, and hash-join
/// the edge results bottom-up. Same label-stream routing as TwigStackJoin.
Result<TupleSet> TwigByStructuralJoins(const TwigPattern& pattern,
                                       const Tree& tree,
                                       const TreeOrders& orders,
                                       const LabelIndex& index,
                                       TwigStats* stats = nullptr,
                                       const ExecContext& exec =
                                           ExecContext::Unbounded());
Result<TupleSet> TwigByStructuralJoins(const TwigPattern& pattern,
                                       const Tree& tree,
                                       const TreeOrders& orders,
                                       TwigStats* stats = nullptr,
                                       const ExecContext& exec =
                                           ExecContext::Unbounded());
Result<TupleSet> TwigByStructuralJoins(const TwigPattern& pattern,
                                       const Document& doc,
                                       TwigStats* stats = nullptr,
                                       const ExecContext& exec =
                                           ExecContext::Unbounded());

}  // namespace cq
}  // namespace treeq

#endif  // TREEQ_CQ_TWIG_JOIN_H_
