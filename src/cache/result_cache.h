#ifndef TREEQ_CACHE_RESULT_CACHE_H_
#define TREEQ_CACHE_RESULT_CACHE_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <future>
#include <list>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "engine/query.h"
#include "query/parse.h"
#include "util/status.h"

/// \file result_cache.h
/// Whole-query result reuse across Submits, in two cooperating pieces:
///
///   - `ResultCache`: a sharded LRU of finished `QueryResult`s keyed by
///     (document epoch, canonical plan hash). The hash is the 128-bit
///     canonical identity from plan/canonicalize.h, so semantically
///     identical queries — across languages, dialects, whitespace, and
///     variable renaming — share one entry; collision odds are the
///     128-bit birthday bound. Errors and degraded results are never
///     inserted.
///
///   - `InflightTable` (singleflight): collapses concurrent identical
///     Submits into one execution. The first submitter of a key becomes
///     the *leader* and runs the query; everyone arriving before the
///     leader finishes becomes a *follower* and receives a copy of the
///     leader's outcome — including its error, if it fails — without ever
///     touching the worker queue.
///
/// Keying and invalidation follow the EvalCache scheme: document epochs
/// are process-unique (tree/document.h), so entries of a replaced document
/// are unreachable by key; InvalidateDocument reclaims them eagerly.
///
/// Thread-safety: all methods of both classes are safe to call
/// concurrently. Lifetime tallies are plain atomics, independent of
/// TREEQ_OBS_DISABLED builds.

namespace treeq {
namespace cache {

/// Identity of one cacheable execution: the document epoch plus the
/// plan's canonical 128-bit hash (engine::Plan::canonical_hash()). The
/// hash already folds in language, dialect options, and query structure —
/// two texts share a key exactly when they compile to the same canonical
/// logical plan, which is the sharing the cache wants.
struct ResultKey {
  uint64_t doc_epoch = 0;
  uint64_t query_hash_hi = 0;
  uint64_t query_hash_lo = 0;

  bool operator==(const ResultKey&) const = default;
};

struct ResultKeyHash {
  size_t operator()(const ResultKey& key) const;
};

struct ResultCacheOptions {
  /// Max resident results across all shards.
  size_t max_entries = 4096;
  /// Approximate byte budget across all shards (value payload + overhead).
  size_t max_bytes = size_t{64} << 20;
  /// Shard count (rounded up to at least 1).
  int num_shards = 8;
};

class ResultCache {
 public:
  explicit ResultCache(
      const ResultCacheOptions& options = ResultCacheOptions());

  ResultCache(const ResultCache&) = delete;
  ResultCache& operator=(const ResultCache&) = delete;

  /// A copy of the cached result for `key`, refreshing recency; nullopt on
  /// a miss.
  std::optional<QueryResult> Lookup(const ResultKey& key);

  /// Caches a copy of `result` under `key`. Callers must not insert
  /// degraded results (the executor enforces this); racing inserts of the
  /// same key keep the resident copy.
  void Insert(const ResultKey& key, const QueryResult& result);

  /// Drops every entry of document `epoch`.
  void InvalidateDocument(uint64_t epoch);

  void Clear();

  size_t size() const;
  size_t bytes_used() const;

  /// Lifetime tallies, independent of TREEQ_OBS_DISABLED.
  uint64_t hits() const { return hits_.load(std::memory_order_relaxed); }
  uint64_t misses() const { return misses_.load(std::memory_order_relaxed); }
  uint64_t inserts() const {
    return inserts_.load(std::memory_order_relaxed);
  }
  uint64_t evictions() const {
    return evictions_.load(std::memory_order_relaxed);
  }

 private:
  struct Entry {
    ResultKey key;
    QueryResult result;
    size_t bytes = 0;
  };
  struct Shard {
    mutable std::mutex mu;
    std::list<Entry> lru;  // front = most recently used
    std::unordered_map<ResultKey, std::list<Entry>::iterator, ResultKeyHash>
        index;
    size_t bytes = 0;
  };

  Shard& ShardFor(const ResultKey& key);
  void EvictLocked(Shard* shard);

  const ResultCacheOptions options_;
  const size_t shard_budget_;
  const size_t shard_entries_;
  std::vector<Shard> shards_;
  std::atomic<uint64_t> hits_{0};
  std::atomic<uint64_t> misses_{0};
  std::atomic<uint64_t> inserts_{0};
  std::atomic<uint64_t> evictions_{0};
  std::atomic<size_t> bytes_{0};
};

/// The in-flight dedup table. Usage protocol (the executor's):
///
///   auto follower = table.Join(key);
///   if (follower) { return *std::move(follower); }   // wait for leader
///   ... enqueue + run the query as leader ...
///   table.Complete(key, outcome);                    // fan out, ALWAYS
///
/// A leader MUST eventually call Complete exactly once — including when
/// its enqueue is rejected — or followers wait forever.
class InflightTable {
 public:
  InflightTable() = default;
  InflightTable(const InflightTable&) = delete;
  InflightTable& operator=(const InflightTable&) = delete;

  /// Joins the flight for `key`. Returns nullopt when the caller is the
  /// first submitter (the leader; the flight is now registered), or a
  /// future of the leader's outcome for followers.
  std::optional<std::future<Result<QueryResult>>> Join(const ResultKey& key);

  /// Ends the flight for `key`: removes it from the table and fulfills
  /// every follower with a copy of `outcome`. No-op for an unknown key.
  void Complete(const ResultKey& key, const Result<QueryResult>& outcome);

  /// In-flight keys right now (for tests).
  size_t size() const;

  /// Lifetime tallies, independent of TREEQ_OBS_DISABLED.
  uint64_t leaders() const {
    return leaders_.load(std::memory_order_relaxed);
  }
  uint64_t followers() const {
    return followers_.load(std::memory_order_relaxed);
  }

 private:
  struct Flight {
    std::vector<std::promise<Result<QueryResult>>> waiters;
  };

  mutable std::mutex mu_;
  std::unordered_map<ResultKey, Flight, ResultKeyHash> flights_;
  std::atomic<uint64_t> leaders_{0};
  std::atomic<uint64_t> followers_{0};
};

}  // namespace cache
}  // namespace treeq

#endif  // TREEQ_CACHE_RESULT_CACHE_H_
