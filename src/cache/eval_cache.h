#ifndef TREEQ_CACHE_EVAL_CACHE_H_
#define TREEQ_CACHE_EVAL_CACHE_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <list>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "tree/axes.h"
#include "tree/node_set.h"

/// \file eval_cache.h
/// Cross-query memoization of evaluation intermediates: a sharded,
/// memory-bounded LRU of `AxisImage` results keyed by
/// (document epoch, axis, input-set fingerprint). One axis-image step is
/// the unit every evaluator in the repo decomposes into — the set-at-a-time
/// XPath evaluator's StepImage (forward and inverse), and the Yannakakis
/// semijoin sweeps of the k-ary CQ route — so memoizing it captures whole
/// XPath step images and the CQ twig reductions with a single mechanism.
///
/// Keying and invalidation: every Document carries a process-unique epoch
/// (tree/document.h, NextDocumentEpoch). Cache keys embed it, so a replaced
/// or re-registered document can never be served another tree's images —
/// stale entries are unreachable by construction and age out of the LRU.
/// DocumentStore eviction listeners additionally call InvalidateDocument()
/// to reclaim their bytes eagerly.
///
/// Collision safety: the input set is identified by a 128-bit two-lane
/// fingerprint of its backing words (two independent mixes over the same
/// stream). A false hit requires a 128-bit collision between two live sets
/// of the same document, axis, universe, and popcount — vanishingly
/// unlikely; the differential tests (tests/cache_differential_test.cc)
/// cross-check cached against uncached results bit for bit.
///
/// Thread-safety: all methods are safe to call concurrently; the read path
/// takes exactly one shard mutex. Lifetime tallies (hits/misses/...) are
/// plain atomics, independent of the obs registry, so tests work under
/// TREEQ_OBS_DISABLED builds too.

namespace treeq {
namespace cache {

struct EvalCacheOptions {
  /// Total byte budget across all shards (approximate: counts the stored
  /// result words plus a fixed per-entry overhead).
  size_t max_bytes = size_t{64} << 20;
  /// Shard count (rounded up to at least 1). More shards = less mutex
  /// contention between workers hitting different keys.
  int num_shards = 8;
  /// Results larger than this are computed but never cached, so one huge
  /// image cannot wipe the working set.
  size_t max_entry_bytes = size_t{8} << 20;
};

class EvalCache {
 public:
  explicit EvalCache(const EvalCacheOptions& options = EvalCacheOptions());

  EvalCache(const EvalCache&) = delete;
  EvalCache& operator=(const EvalCache&) = delete;

  /// Serves `*to` from the cache when it holds the image of `from` under
  /// `axis` for document `epoch`. On a hit, `*to` is fully overwritten with
  /// a copy of the stored set and recency is refreshed.
  bool Lookup(uint64_t epoch, Axis axis, const NodeSet& from, NodeSet* to);

  /// Stores the image `to` of `from` under `axis` for document `epoch`,
  /// evicting LRU entries of the shard until the byte budget holds.
  /// Oversized results (> max_entry_bytes) are silently skipped.
  void Insert(uint64_t epoch, Axis axis, const NodeSet& from,
              const NodeSet& to);

  /// Drops every entry of document `epoch` (all shards). Entries keyed by
  /// a dead epoch are unreachable anyway; this reclaims their bytes now.
  void InvalidateDocument(uint64_t epoch);

  void Clear();

  size_t size() const;
  size_t bytes_used() const;
  const EvalCacheOptions& options() const { return options_; }

  /// Lifetime tallies, independent of TREEQ_OBS_DISABLED.
  uint64_t hits() const { return hits_.load(std::memory_order_relaxed); }
  uint64_t misses() const { return misses_.load(std::memory_order_relaxed); }
  uint64_t inserts() const {
    return inserts_.load(std::memory_order_relaxed);
  }
  uint64_t evictions() const {
    return evictions_.load(std::memory_order_relaxed);
  }

  /// The AxisImageMemo adapter evaluators consume (tree/axes.h): one cache
  /// bound to one document epoch. Stateless beyond the binding — cheap to
  /// construct per request, safe to share across the request's threads.
  class Memo : public AxisImageMemo {
   public:
    Memo(EvalCache* cache, uint64_t epoch) : cache_(cache), epoch_(epoch) {}
    bool Lookup(Axis axis, const NodeSet& from, NodeSet* to) override {
      return cache_->Lookup(epoch_, axis, from, to);
    }
    void Store(Axis axis, const NodeSet& from, const NodeSet& to) override {
      cache_->Insert(epoch_, axis, from, to);
    }

   private:
    EvalCache* cache_;
    uint64_t epoch_;
  };

 private:
  struct Key {
    uint64_t epoch = 0;
    uint64_t fp_lo = 0;
    uint64_t fp_hi = 0;
    int32_t axis = 0;
    int32_t universe = 0;
    bool operator==(const Key&) const = default;
  };
  struct KeyHash {
    size_t operator()(const Key& k) const;
  };
  struct Entry {
    Key key;
    NodeSet result;
    size_t bytes = 0;
  };
  struct Shard {
    mutable std::mutex mu;
    std::list<Entry> lru;  // front = most recently used
    std::unordered_map<Key, std::list<Entry>::iterator, KeyHash> index;
    size_t bytes = 0;
  };

  static Key MakeKey(uint64_t epoch, Axis axis, const NodeSet& from);
  Shard& ShardFor(const Key& key);
  /// Evicts from the back of `shard` until its budget holds. Caller holds
  /// shard.mu.
  void EvictLocked(Shard* shard);

  const EvalCacheOptions options_;
  const size_t shard_budget_;
  std::vector<Shard> shards_;
  std::atomic<uint64_t> hits_{0};
  std::atomic<uint64_t> misses_{0};
  std::atomic<uint64_t> inserts_{0};
  std::atomic<uint64_t> evictions_{0};
  std::atomic<size_t> bytes_{0};
};

}  // namespace cache
}  // namespace treeq

#endif  // TREEQ_CACHE_EVAL_CACHE_H_
