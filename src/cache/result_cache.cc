#include "cache/result_cache.h"

#include <algorithm>
#include <utility>

#include "fault/fault.h"
#include "obs/obs.h"

namespace treeq {
namespace cache {

namespace {

constexpr size_t kEntryOverheadBytes = 192;

inline uint64_t Mix(uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

/// Approximate payload size of a result: the variant's heap footprint.
size_t ResultBytes(const QueryResult& result) {
  size_t bytes = sizeof(QueryResult);
  if (result.is_nodes()) {
    bytes += static_cast<size_t>(result.nodes().num_words()) *
             sizeof(uint64_t);
  } else if (result.is_tuples()) {
    for (const std::vector<NodeId>& tuple : result.tuples()) {
      bytes += sizeof(std::vector<NodeId>) + tuple.size() * sizeof(NodeId);
    }
  }
  return bytes;
}

}  // namespace

size_t ResultKeyHash::operator()(const ResultKey& key) const {
  uint64_t h = Mix(key.query_hash_lo);
  h = Mix(h ^ key.query_hash_hi);
  h = Mix(h ^ key.doc_epoch);
  return static_cast<size_t>(h);
}

ResultCache::ResultCache(const ResultCacheOptions& options)
    : options_(options),
      shard_budget_(std::max<size_t>(
          1, options.max_bytes /
                 static_cast<size_t>(std::max(1, options.num_shards)))),
      shard_entries_(std::max<size_t>(
          1, options.max_entries /
                 static_cast<size_t>(std::max(1, options.num_shards)))),
      shards_(static_cast<size_t>(std::max(1, options.num_shards))) {}

ResultCache::Shard& ResultCache::ShardFor(const ResultKey& key) {
  return shards_[ResultKeyHash{}(key) % shards_.size()];
}

std::optional<QueryResult> ResultCache::Lookup(const ResultKey& key) {
  // Injected lookup failure = a forced miss: the request executes as if
  // the entry were evicted a moment earlier. Counted as a real miss.
  if (TREEQ_FAULT_FIRED("cache.result.lookup")) {
    misses_.fetch_add(1, std::memory_order_relaxed);
    TREEQ_OBS_INC("cache.result.misses");
    return std::nullopt;
  }
  Shard& shard = ShardFor(key);
  {
    std::lock_guard<std::mutex> lock(shard.mu);
    auto it = shard.index.find(key);
    if (it != shard.index.end()) {
      shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
      hits_.fetch_add(1, std::memory_order_relaxed);
      TREEQ_OBS_INC("cache.result.hits");
      return it->second->result;
    }
  }
  misses_.fetch_add(1, std::memory_order_relaxed);
  TREEQ_OBS_INC("cache.result.misses");
  return std::nullopt;
}

void ResultCache::Insert(const ResultKey& key, const QueryResult& result) {
  // Injected insert failure = the entry is silently dropped; later lookups
  // miss and recompute. Residency is an optimization, never a contract.
  if (TREEQ_FAULT_FIRED("cache.result.insert")) return;
  const size_t entry_bytes = kEntryOverheadBytes + ResultBytes(result);
  if (entry_bytes > shard_budget_) return;
  Shard& shard = ShardFor(key);
  {
    std::lock_guard<std::mutex> lock(shard.mu);
    auto it = shard.index.find(key);
    if (it != shard.index.end()) {
      shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
      return;
    }
    shard.lru.push_front(Entry{key, result, entry_bytes});
    shard.index[key] = shard.lru.begin();
    shard.bytes += entry_bytes;
    bytes_.fetch_add(entry_bytes, std::memory_order_relaxed);
    EvictLocked(&shard);
  }
  inserts_.fetch_add(1, std::memory_order_relaxed);
  TREEQ_OBS_INC("cache.result.inserts");
  TREEQ_OBS_HISTOGRAM("cache.result.entry_bytes",
                      static_cast<uint64_t>(entry_bytes));
}

void ResultCache::EvictLocked(Shard* shard) {
  while ((shard->bytes > shard_budget_ ||
          shard->lru.size() > shard_entries_) &&
         !shard->lru.empty()) {
    const Entry& victim = shard->lru.back();
    shard->bytes -= victim.bytes;
    bytes_.fetch_sub(victim.bytes, std::memory_order_relaxed);
    shard->index.erase(victim.key);
    shard->lru.pop_back();
    evictions_.fetch_add(1, std::memory_order_relaxed);
    TREEQ_OBS_INC("cache.result.evictions");
  }
}

void ResultCache::InvalidateDocument(uint64_t epoch) {
  // Injected invalidate failure = dead-epoch entries linger until evicted
  // by capacity. Safe because keys carry the epoch: a replaced document
  // gets a fresh epoch, so stale entries can never satisfy a new lookup —
  // the fault only delays memory reclamation, which the storm verifies.
  if (TREEQ_FAULT_FIRED("cache.result.invalidate")) return;
  for (Shard& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard.mu);
    for (auto it = shard.lru.begin(); it != shard.lru.end();) {
      if (it->key.doc_epoch == epoch) {
        shard.bytes -= it->bytes;
        bytes_.fetch_sub(it->bytes, std::memory_order_relaxed);
        shard.index.erase(it->key);
        it = shard.lru.erase(it);
        TREEQ_OBS_INC("cache.result.invalidated");
      } else {
        ++it;
      }
    }
  }
}

void ResultCache::Clear() {
  for (Shard& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard.mu);
    bytes_.fetch_sub(shard.bytes, std::memory_order_relaxed);
    shard.bytes = 0;
    shard.lru.clear();
    shard.index.clear();
  }
}

size_t ResultCache::size() const {
  size_t total = 0;
  for (const Shard& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard.mu);
    total += shard.lru.size();
  }
  return total;
}

size_t ResultCache::bytes_used() const {
  return bytes_.load(std::memory_order_relaxed);
}

std::optional<std::future<Result<QueryResult>>> InflightTable::Join(
    const ResultKey& key) {
  std::lock_guard<std::mutex> lock(mu_);
  auto [it, inserted] = flights_.try_emplace(key);
  if (inserted) {
    leaders_.fetch_add(1, std::memory_order_relaxed);
    TREEQ_OBS_INC("cache.singleflight.leaders");
    return std::nullopt;
  }
  it->second.waiters.emplace_back();
  followers_.fetch_add(1, std::memory_order_relaxed);
  TREEQ_OBS_INC("cache.singleflight.followers");
  return it->second.waiters.back().get_future();
}

void InflightTable::Complete(const ResultKey& key,
                             const Result<QueryResult>& outcome) {
  Flight flight;
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = flights_.find(key);
    if (it == flights_.end()) return;
    flight = std::move(it->second);
    flights_.erase(it);
  }
  // Fulfill outside the lock: set_value wakes waiters, and a waiter's
  // continuation must never run under the table mutex.
  for (std::promise<Result<QueryResult>>& waiter : flight.waiters) {
    if (outcome.ok()) {
      waiter.set_value(outcome.value());
    } else {
      waiter.set_value(outcome.status());
    }
  }
}

size_t InflightTable::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return flights_.size();
}

}  // namespace cache
}  // namespace treeq
