#include "cache/eval_cache.h"

#include <algorithm>
#include <utility>

#include "fault/fault.h"
#include "obs/obs.h"

namespace treeq {
namespace cache {

namespace {

/// Fixed per-entry overhead charged against the byte budget: key, list and
/// map node bookkeeping. Approximate on purpose — the budget bounds memory
/// order-of-magnitude, it is not an allocator audit.
constexpr size_t kEntryOverheadBytes = 128;

/// splitmix64's finalizer — the standard cheap 64-bit mix.
inline uint64_t Mix(uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

size_t EntryBytes(const NodeSet& result) {
  return kEntryOverheadBytes +
         static_cast<size_t>(result.num_words()) * sizeof(uint64_t);
}

}  // namespace

size_t EvalCache::KeyHash::operator()(const Key& k) const {
  uint64_t h = Mix(k.fp_lo ^ Mix(k.fp_hi));
  h = Mix(h ^ k.epoch);
  h = Mix(h ^ (static_cast<uint64_t>(static_cast<uint32_t>(k.axis)) << 32 |
               static_cast<uint32_t>(k.universe)));
  return static_cast<size_t>(h);
}

EvalCache::EvalCache(const EvalCacheOptions& options)
    : options_(options),
      shard_budget_(std::max<size_t>(
          1, options.max_bytes /
                 static_cast<size_t>(std::max(1, options.num_shards)))),
      shards_(static_cast<size_t>(std::max(1, options.num_shards))) {}

EvalCache::Key EvalCache::MakeKey(uint64_t epoch, Axis axis,
                                  const NodeSet& from) {
  // Two independent lanes over the same word stream: FNV-1a-style in lane
  // one, position-salted splitmix in lane two. 128 bits total — see the
  // file comment on collision safety.
  uint64_t lo = 14695981039346656037ull;
  uint64_t hi = 0x2545f4914f6cdd1dull;
  uint64_t pos = 0;
  for (uint64_t w : from.words()) {
    lo = (lo ^ w) * 1099511628211ull;
    hi ^= Mix(w + (++pos) * 0x9e3779b97f4a7c15ull);
  }
  Key key;
  key.epoch = epoch;
  key.fp_lo = lo;
  key.fp_hi = hi;
  key.axis = static_cast<int32_t>(axis);
  key.universe = from.universe();
  return key;
}

EvalCache::Shard& EvalCache::ShardFor(const Key& key) {
  return shards_[KeyHash{}(key) % shards_.size()];
}

bool EvalCache::Lookup(uint64_t epoch, Axis axis, const NodeSet& from,
                       NodeSet* to) {
  // Injected lookup failure = a forced miss: the memo recomputes, results
  // stay bit-identical, only the hit rate moves. Counted as a real miss.
  if (TREEQ_FAULT_FIRED("cache.eval.lookup")) {
    misses_.fetch_add(1, std::memory_order_relaxed);
    TREEQ_OBS_INC("cache.eval.misses");
    return false;
  }
  const Key key = MakeKey(epoch, axis, from);
  Shard& shard = ShardFor(key);
  {
    std::lock_guard<std::mutex> lock(shard.mu);
    auto it = shard.index.find(key);
    if (it != shard.index.end()) {
      shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
      *to = it->second->result;
      hits_.fetch_add(1, std::memory_order_relaxed);
      TREEQ_OBS_INC("cache.eval.hits");
      return true;
    }
  }
  misses_.fetch_add(1, std::memory_order_relaxed);
  TREEQ_OBS_INC("cache.eval.misses");
  return false;
}

void EvalCache::Insert(uint64_t epoch, Axis axis, const NodeSet& from,
                       const NodeSet& to) {
  // Injected insert failure = the entry is silently dropped, as if it lost
  // an eviction race immediately. Correctness never depends on residency.
  if (TREEQ_FAULT_FIRED("cache.eval.insert")) return;
  const size_t entry_bytes = EntryBytes(to);
  if (entry_bytes > options_.max_entry_bytes ||
      entry_bytes > shard_budget_) {
    return;
  }
  const Key key = MakeKey(epoch, axis, from);
  Shard& shard = ShardFor(key);
  {
    std::lock_guard<std::mutex> lock(shard.mu);
    auto it = shard.index.find(key);
    if (it != shard.index.end()) {
      // Racing insert of the same step; keep the resident copy (results
      // are bit-identical by the memo contract).
      shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
      return;
    }
    shard.lru.push_front(Entry{key, to, entry_bytes});
    shard.index[key] = shard.lru.begin();
    shard.bytes += entry_bytes;
    bytes_.fetch_add(entry_bytes, std::memory_order_relaxed);
    EvictLocked(&shard);
  }
  inserts_.fetch_add(1, std::memory_order_relaxed);
  TREEQ_OBS_INC("cache.eval.inserts");
  TREEQ_OBS_HISTOGRAM("cache.eval.entry_words",
                      static_cast<uint64_t>(to.num_words()));
}

void EvalCache::EvictLocked(Shard* shard) {
  while (shard->bytes > shard_budget_ && !shard->lru.empty()) {
    const Entry& victim = shard->lru.back();
    shard->bytes -= victim.bytes;
    bytes_.fetch_sub(victim.bytes, std::memory_order_relaxed);
    shard->index.erase(victim.key);
    shard->lru.pop_back();
    evictions_.fetch_add(1, std::memory_order_relaxed);
    TREEQ_OBS_INC("cache.eval.evictions");
  }
}

void EvalCache::InvalidateDocument(uint64_t epoch) {
  for (Shard& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard.mu);
    for (auto it = shard.lru.begin(); it != shard.lru.end();) {
      if (it->key.epoch == epoch) {
        shard.bytes -= it->bytes;
        bytes_.fetch_sub(it->bytes, std::memory_order_relaxed);
        shard.index.erase(it->key);
        it = shard.lru.erase(it);
        TREEQ_OBS_INC("cache.eval.invalidated");
      } else {
        ++it;
      }
    }
  }
}

void EvalCache::Clear() {
  for (Shard& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard.mu);
    bytes_.fetch_sub(shard.bytes, std::memory_order_relaxed);
    shard.bytes = 0;
    shard.lru.clear();
    shard.index.clear();
  }
}

size_t EvalCache::size() const {
  size_t total = 0;
  for (const Shard& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard.mu);
    total += shard.lru.size();
  }
  return total;
}

size_t EvalCache::bytes_used() const {
  return bytes_.load(std::memory_order_relaxed);
}

}  // namespace cache
}  // namespace treeq
