#include "engine/document_store.h"

#include <utility>

#include "fault/fault.h"
#include "obs/obs.h"

namespace treeq {
namespace engine {

Result<DocumentPtr> DocumentStore::Add(std::string_view name, Tree tree) {
  DocumentPtr doc = MakeDocumentWithOrders(std::move(tree),
                                           std::string(name));
  std::lock_guard<std::mutex> lock(mu_);
  auto [it, inserted] = docs_.emplace(std::string(name), doc);
  if (!inserted) {
    return Status::InvalidArgument("document name already registered: " +
                                   std::string(name));
  }
  TREEQ_OBS_INC("engine.store.documents_added");
  return doc;
}

Result<DocumentPtr> DocumentStore::Replace(std::string_view name,
                                           Tree tree) {
  DocumentPtr doc = MakeDocumentWithOrders(std::move(tree),
                                           std::string(name));
  uint64_t old_epoch = 0;
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = docs_.find(name);
    if (it == docs_.end()) {
      return Status::NotFound("no document named: " + std::string(name));
    }
    old_epoch = it->second->epoch();
    it->second = doc;
  }
  TREEQ_OBS_INC("engine.store.documents_replaced");
  NotifyEviction(old_epoch);
  return doc;
}

Result<DocumentPtr> DocumentStore::Get(std::string_view name) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = docs_.find(name);
  if (it == docs_.end()) {
    return Status::NotFound("no document named: " + std::string(name));
  }
  return it->second;
}

Status DocumentStore::Remove(std::string_view name) {
  uint64_t old_epoch = 0;
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = docs_.find(name);
    if (it == docs_.end()) {
      return Status::NotFound("no document named: " + std::string(name));
    }
    old_epoch = it->second->epoch();
    docs_.erase(it);
  }
  NotifyEviction(old_epoch);
  return Status::OK();
}

void DocumentStore::AddEvictionListener(EvictionListener fn) {
  if (fn == nullptr) return;
  std::lock_guard<std::mutex> lock(mu_);
  listeners_.push_back(std::move(fn));
}

void DocumentStore::NotifyEviction(uint64_t epoch) {
  // Injected notify failure = the eviction fan-out is lost, so epoch-keyed
  // cache entries for the dead document are never proactively invalidated.
  // Correctness survives because cache keys carry the epoch (stale entries
  // cannot satisfy new lookups); the storm asserts exactly that.
  if (TREEQ_FAULT_FIRED("store.evict.notify")) return;
  std::vector<EvictionListener> listeners;
  {
    std::lock_guard<std::mutex> lock(mu_);
    listeners = listeners_;
  }
  for (const EvictionListener& fn : listeners) fn(epoch);
}

std::vector<std::string> DocumentStore::Names() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::string> names;
  names.reserve(docs_.size());
  for (const auto& [name, doc] : docs_) names.push_back(name);
  return names;
}

size_t DocumentStore::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return docs_.size();
}

}  // namespace engine
}  // namespace treeq
