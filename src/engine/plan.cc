#include "engine/plan.h"

#include <utility>

#include "cq/enumerate.h"
#include "datalog/evaluator.h"
#include "fo/corollary52.h"
#include "fo/evaluator.h"
#include "obs/obs.h"
#include "xpath/evaluator.h"

namespace treeq {
namespace engine {

Result<PlanPtr> Plan::Compile(Language language, std::string_view text) {
  TREEQ_OBS_SPAN("engine.plan.compile");
  TREEQ_OBS_INC("engine.plan.compiles");
  TREEQ_ASSIGN_OR_RETURN(ParsedQuery parsed, ParseQuery(language, text));

  auto plan = std::shared_ptr<Plan>(new Plan());
  plan->text_ = std::string(text);
  plan->query_ = std::move(parsed);

  switch (language) {
    case Language::kXPath:
    case Language::kDatalog:
      break;  // the parsers validate fully
    case Language::kCq: {
      const cq::ConjunctiveQuery& q = *plan->query_.cq;
      plan->cq_boolean_ = q.IsBoolean();
      cq::ConjunctiveQuery normalized = q;
      normalized.NormalizeInverseAxes();
      plan->cq_class_ = cq::ClassifySignature(normalized.AxesUsed());
      if (!plan->cq_boolean_ && !q.IsTreeShaped()) {
        return Status::Unsupported(
            "k-ary CQ plans require a tree-shaped query graph "
            "(acyclic evaluation, Proposition 6.10): " +
            q.ToString());
      }
      break;
    }
    case Language::kFo: {
      if (!fo::FreeVariables(*plan->query_.fo).empty()) {
        return Status::Unsupported(
            "FO plans must be sentences (no free variables): " +
            fo::ToString(*plan->query_.fo));
      }
      plan->fo_positive_ = fo::IsPositive(*plan->query_.fo);
      break;
    }
  }
  return PlanPtr(std::move(plan));
}

Result<QueryResult> Plan::Run(const Document& doc) const {
  TREEQ_OBS_SPAN("engine.plan.run");
  TREEQ_OBS_INC("engine.plan.runs");
  QueryResult out;
  out.language = query_.language;
  switch (query_.language) {
    case Language::kXPath: {
      out.nodes = xpath::EvalQueryFromRoot(doc, *query_.xpath);
      return out;
    }
    case Language::kDatalog: {
      TREEQ_ASSIGN_OR_RETURN(out.nodes,
                             datalog::EvaluateDatalog(*query_.datalog, doc));
      return out;
    }
    case Language::kCq: {
      if (cq_boolean_) {
        out.is_boolean = true;
        TREEQ_ASSIGN_OR_RETURN(
            out.boolean, cq::EvaluateBooleanDichotomy(*query_.cq, doc));
        return out;
      }
      TREEQ_ASSIGN_OR_RETURN(out.tuples,
                             cq::EvaluateAcyclic(*query_.cq, doc));
      return out;
    }
    case Language::kFo: {
      out.is_boolean = true;
      if (fo_positive_) {
        TREEQ_ASSIGN_OR_RETURN(
            out.boolean, fo::EvaluateSentencePositive(*query_.fo, doc));
      } else {
        TREEQ_ASSIGN_OR_RETURN(out.boolean,
                               fo::EvaluateSentenceNaive(*query_.fo, doc));
      }
      return out;
    }
  }
  return Status::Internal("plan with invalid language");
}

}  // namespace engine
}  // namespace treeq
