#include "engine/plan.h"

#include <chrono>
#include <utility>

#include "cq/enumerate.h"
#include "datalog/evaluator.h"
#include "fo/corollary52.h"
#include "fo/evaluator.h"
#include "obs/obs.h"
#include "stream/stream_eval.h"
#include "xpath/evaluator.h"
#include "xpath/to_forward.h"

namespace treeq {
namespace engine {

namespace {

/// The |Q| factor of the visit estimate, per language.
uint64_t QuerySize(const ParsedQuery& query) {
  switch (query.language) {
    case Language::kXPath:
      return static_cast<uint64_t>(xpath::PathSize(*query.xpath));
    case Language::kCq:
      return static_cast<uint64_t>(query.cq->num_vars());
    case Language::kDatalog:
      return query.datalog->rules().size();
    case Language::kFo:
      return static_cast<uint64_t>(fo::Size(*query.fo));
  }
  return 1;
}

}  // namespace

Result<PlanPtr> Plan::Compile(Language language, std::string_view text) {
  return Compile(language, text, ParseOptions{});
}

Result<PlanPtr> Plan::Compile(Language language, std::string_view text,
                              const ParseOptions& parse_options) {
  TREEQ_OBS_SPAN("engine.plan.compile");
  TREEQ_OBS_INC("engine.plan.compiles");
  const auto compile_start = std::chrono::steady_clock::now();
  TREEQ_ASSIGN_OR_RETURN(ParsedQuery parsed,
                         ParseQuery(language, text, parse_options));

  auto plan = std::shared_ptr<Plan>(new Plan());
  plan->text_ = std::string(text);
  plan->parse_options_ = parse_options;
  plan->query_ = std::move(parsed);

  switch (language) {
    case Language::kXPath: {
      // Pre-compute the streaming fallback while we are still on the
      // compile path: forward rewrite (Section 5) + matcher compilation +
      // selection support. Failures just mean "not stream-capable".
      Result<std::unique_ptr<xpath::PathExpr>> forward =
          xpath::ToForwardXPath(*plan->query_.xpath);
      if (forward.ok()) {
        Result<std::unique_ptr<stream::StreamMatcher>> matcher =
            stream::StreamMatcher::Compile(*forward.value());
        if (matcher.ok() && matcher.value()->selection_supported()) {
          plan->stream_query_ = std::move(forward).value();
        }
      }
      break;
    }
    case Language::kDatalog:
      break;  // the parsers validate fully
    case Language::kCq: {
      const cq::ConjunctiveQuery& q = *plan->query_.cq;
      plan->cq_boolean_ = q.IsBoolean();
      cq::ConjunctiveQuery normalized = q;
      normalized.NormalizeInverseAxes();
      plan->cq_class_ = cq::ClassifySignature(normalized.AxesUsed());
      if (!plan->cq_boolean_ && !q.IsTreeShaped()) {
        return Status::Unsupported(
            "k-ary CQ plans require a tree-shaped query graph "
            "(acyclic evaluation, Proposition 6.10): " +
            q.ToString());
      }
      break;
    }
    case Language::kFo: {
      if (!fo::FreeVariables(*plan->query_.fo).empty()) {
        return Status::Unsupported(
            "FO plans must be sentences (no free variables): " +
            fo::ToString(*plan->query_.fo));
      }
      plan->fo_positive_ = fo::IsPositive(*plan->query_.fo);
      break;
    }
  }

  // The Explain() line and compile_ns are routing metadata computed once
  // here so per-query profiles copy a finished string instead of
  // re-deriving the classification on the serving path.
  switch (language) {
    case Language::kXPath:
      plan->explain_ = "xpath: set-at-a-time evaluator";
      plan->explain_ += plan->stream_query_ != nullptr
                            ? "; stream fallback available (forward rewrite)"
                            : "; no stream fallback";
      break;
    case Language::kDatalog:
      plan->explain_ = "datalog: TMNF grounding + fixpoint";
      break;
    case Language::kCq:
      plan->explain_ = plan->cq_boolean_ ? "cq boolean: class "
                                         : "cq k-ary: class ";
      plan->explain_ += cq::SignatureClassName(plan->cq_class_);
      if (!plan->cq_boolean_) {
        plan->explain_ += " -> acyclic enumeration (Yannakakis)";
      } else if (plan->cq_class_ == cq::SignatureClass::kNpHard) {
        plan->explain_ += " -> backtracking search";
      } else {
        plan->explain_ += " -> X-property evaluation";
      }
      break;
    case Language::kFo:
      plan->explain_ = plan->fo_positive_
                           ? "fo: positive sentence -> Corollary 5.2 pipeline"
                           : "fo: sentence with negation -> naive model "
                             "checking";
      break;
  }
  plan->explain_ += "; est. visits = |Q|*(|D|+1), |Q|=" +
                    std::to_string(QuerySize(plan->query_));
  plan->compile_ns_ = static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now() - compile_start)
          .count());
  return PlanPtr(std::move(plan));
}

const char* Plan::route_name() const {
  switch (query_.language) {
    case Language::kXPath:
      return "xpath.set_at_a_time";
    case Language::kDatalog:
      return "datalog.tmnf";
    case Language::kCq:
      if (!cq_boolean_) return "cq.yannakakis";
      return cq_class_ == cq::SignatureClass::kNpHard ? "cq.backtracking"
                                                      : "cq.x_property";
    case Language::kFo:
      return fo_positive_ ? "fo.corollary52" : "fo.naive";
  }
  return "unknown";
}

Result<QueryResult> Plan::Run(const Document& doc) const {
  return Execute(doc, ExecContext::Unbounded(), ExecuteOptions{});
}

Result<QueryResult> Plan::Run(const Document& doc,
                              const ExecContext& exec) const {
  return Execute(doc, exec, ExecuteOptions{});
}

Result<QueryResult> Plan::Run(const Document& doc, const ExecContext& exec,
                              bool allow_degraded) const {
  ExecuteOptions options;
  options.allow_degraded = allow_degraded;
  return Execute(doc, exec, options);
}

uint64_t Plan::EstimatedVisits(const Document& doc) const {
  return QuerySize(query_) * (static_cast<uint64_t>(doc.num_nodes()) + 1);
}

bool Plan::PredictsBlowup(const Document& doc, const ExecContext& exec) const {
  const uint64_t budget = exec.limits().visit_budget;
  if (budget == UINT64_MAX) return false;
  const uint64_t used = exec.visits_used();
  const uint64_t remaining = budget > used ? budget - used : 0;
  return EstimatedVisits(doc) > remaining;
}

Result<QueryResult> Plan::Execute(const Document& doc,
                                  const ExecContext& exec,
                                  const ExecuteOptions& options) const {
  TREEQ_OBS_SPAN("engine.plan.run");
  TREEQ_OBS_INC("engine.plan.runs");
  // A request that spent its whole queue wait past the deadline should not
  // start evaluating at all.
  TREEQ_RETURN_IF_ERROR(exec.CheckNow());
  QueryResult out;
  out.language = query_.language;
  out.engine = route_name();
  switch (query_.language) {
    case Language::kXPath: {
      if (options.allow_degraded && stream_query_ != nullptr &&
          PredictsBlowup(doc, exec)) {
        TREEQ_OBS_INC("engine.degraded");
        out.degraded = true;
        out.engine = "xpath.stream";
        TREEQ_ASSIGN_OR_RETURN(
            std::vector<NodeId> selected,
            stream::StreamMatcher::SelectFromTree(*stream_query_, doc.tree(),
                                                  /*stats=*/nullptr, exec));
        NodeSet nodes(doc.num_nodes());
        for (NodeId v : selected) nodes.Insert(v);
        out.value.emplace<NodeSet>(std::move(nodes));
        return out;
      }
      // Parallel routing: only when asked for, only with a runner to run
      // the forked tasks, and only when the visit estimate says the query
      // is big enough to amortize fork/merge overhead. The parallel
      // evaluator's answer is bit-identical to the serial one.
      if (options.parallelism >= 2 && options.runner != nullptr &&
          EstimatedVisits(doc) >= options.parallel_min_visits) {
        TREEQ_OBS_INC("engine.parallel_runs");
        par::ParOptions par_options;
        par_options.parallelism = options.parallelism;
        par_options.runner = options.runner;
        par_options.min_context = options.parallel_min_context;
        par::ParStats par_stats;
        TREEQ_ASSIGN_OR_RETURN(
            NodeSet nodes,
            xpath::EvalQueryFromRootParallel(doc, *query_.xpath, exec,
                                             par_options, &par_stats));
        out.partitions = par_stats.partitions;
        out.parallel_ns = par_stats.parallel_ns;
        out.merge_ns = par_stats.merge_ns;
        out.value.emplace<NodeSet>(std::move(nodes));
        return out;
      }
      TREEQ_ASSIGN_OR_RETURN(
          NodeSet nodes, xpath::EvalQueryFromRoot(doc, *query_.xpath, exec,
                                                  options.axis_memo));
      out.value.emplace<NodeSet>(std::move(nodes));
      return out;
    }
    case Language::kDatalog: {
      TREEQ_ASSIGN_OR_RETURN(
          NodeSet nodes,
          datalog::EvaluateDatalog(*query_.datalog, doc, /*stats=*/nullptr,
                                   exec));
      out.value.emplace<NodeSet>(std::move(nodes));
      return out;
    }
    case Language::kCq: {
      if (cq_boolean_) {
        bool used_tractable_path = false;
        TREEQ_ASSIGN_OR_RETURN(
            bool answer,
            cq::EvaluateBooleanDichotomy(*query_.cq, doc,
                                         &used_tractable_path, exec));
        out.value.emplace<bool>(answer);
        // Report the route the dichotomy actually took, not the prediction.
        out.engine =
            used_tractable_path ? "cq.x_property" : "cq.backtracking";
        return out;
      }
      TREEQ_ASSIGN_OR_RETURN(
          TupleSet tuples,
          cq::EvaluateAcyclic(*query_.cq, doc, UINT64_MAX, exec,
                              options.axis_memo));
      out.value.emplace<TupleSet>(std::move(tuples));
      return out;
    }
    case Language::kFo: {
      bool answer = false;
      if (fo_positive_) {
        TREEQ_ASSIGN_OR_RETURN(
            answer,
            fo::EvaluateSentencePositive(*query_.fo, doc, /*stats=*/nullptr,
                                         exec));
      } else {
        TREEQ_ASSIGN_OR_RETURN(
            answer,
            fo::EvaluateSentenceNaive(*query_.fo, doc, UINT64_MAX, exec));
      }
      out.value.emplace<bool>(answer);
      return out;
    }
  }
  return Status::Internal("plan with invalid language");
}

}  // namespace engine
}  // namespace treeq
