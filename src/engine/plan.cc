#include "engine/plan.h"

#include <algorithm>
#include <chrono>
#include <utility>

#include "cq/enumerate.h"
#include "datalog/evaluator.h"
#include "fault/fault.h"
#include "fo/corollary52.h"
#include "fo/evaluator.h"
#include "obs/obs.h"
#include "plan/canonicalize.h"
#include "plan/lower.h"
#include "plan/route.h"
#include "stream/stream_eval.h"
#include "xpath/evaluator.h"
#include "xpath/naive_evaluator.h"
#include "xpath/to_datalog.h"
#include "xpath/to_forward.h"

namespace treeq {
namespace engine {

namespace {

/// The |Q| factor of the visit estimate, per language.
uint64_t QuerySize(const ParsedQuery& query) {
  switch (query.language) {
    case Language::kXPath:
      return static_cast<uint64_t>(xpath::PathSize(*query.xpath));
    case Language::kCq:
      return static_cast<uint64_t>(query.cq->num_vars());
    case Language::kDatalog:
      return query.datalog->rules().size();
    case Language::kFo:
      return static_cast<uint64_t>(fo::Size(*query.fo));
  }
  return 1;
}

/// TREEQ_OBS_INC caches one counter per macro site; each language's
/// lowering counter needs its own literal.
void CountLowering(Language language, bool structural) {
  switch (language) {
    case Language::kXPath:
      TREEQ_OBS_INC("plan.lower.xpath");
      break;
    case Language::kCq:
      TREEQ_OBS_INC("plan.lower.cq");
      break;
    case Language::kDatalog:
      TREEQ_OBS_INC("plan.lower.datalog");
      break;
    case Language::kFo:
      TREEQ_OBS_INC("plan.lower.fo");
      break;
  }
  if (!structural) TREEQ_OBS_INC("plan.lower.opaque");
}

/// Canonical result order so every engine's answer is bit-identical:
/// tuples sort lexicographically and dedupe.
void NormalizeTuples(TupleSet* tuples) {
  std::sort(tuples->begin(), tuples->end());
  tuples->erase(std::unique(tuples->begin(), tuples->end()),
                tuples->end());
}

}  // namespace

Result<PlanPtr> Plan::Compile(Language language, std::string_view text) {
  return Compile(language, text, ParseOptions{});
}

Result<PlanPtr> Plan::Compile(Language language, std::string_view text,
                              const ParseOptions& parse_options) {
  TREEQ_OBS_SPAN("engine.plan.compile");
  TREEQ_OBS_INC("engine.plan.compiles");
  const auto compile_start = std::chrono::steady_clock::now();
  TREEQ_ASSIGN_OR_RETURN(ParsedQuery parsed,
                         ParseQuery(language, text, parse_options));

  auto plan = std::shared_ptr<Plan>(new Plan());
  plan->text_ = std::string(text);
  plan->parse_options_ = parse_options;
  plan->query_ = std::move(parsed);

  switch (language) {
    case Language::kXPath: {
      // Pre-compute the streaming fallback while we are still on the
      // compile path: forward rewrite (Section 5) + matcher compilation +
      // selection support. Failures just mean "not stream-capable".
      Result<std::unique_ptr<xpath::PathExpr>> forward =
          xpath::ToForwardXPath(*plan->query_.xpath);
      if (forward.ok()) {
        Result<std::unique_ptr<stream::StreamMatcher>> matcher =
            stream::StreamMatcher::Compile(*forward.value());
        if (matcher.ok() && matcher.value()->selection_supported()) {
          plan->stream_query_ = std::move(forward).value();
        }
      }
      break;
    }
    case Language::kDatalog:
      break;  // the parsers validate fully
    case Language::kCq: {
      const cq::ConjunctiveQuery& q = *plan->query_.cq;
      plan->cq_boolean_ = q.IsBoolean();
      cq::ConjunctiveQuery normalized = q;
      normalized.NormalizeInverseAxes();
      plan->cq_class_ = cq::ClassifySignature(normalized.AxesUsed());
      if (!plan->cq_boolean_ && !q.IsTreeShaped()) {
        return Status::Unsupported(
            "k-ary CQ plans require a tree-shaped query graph "
            "(acyclic evaluation, Proposition 6.10): " +
            q.ToString());
      }
      break;
    }
    case Language::kFo: {
      if (!fo::FreeVariables(*plan->query_.fo).empty()) {
        return Status::Unsupported(
            "FO plans must be sentences (no free variables): " +
            fo::ToString(*plan->query_.fo));
      }
      plan->fo_positive_ = fo::IsPositive(*plan->query_.fo);
      break;
    }
  }

  plan->BuildLogicalPlan();

  // The Explain() line and compile_ns are routing metadata computed once
  // here so per-query profiles copy a finished string instead of
  // re-deriving the classification on the serving path.
  switch (language) {
    case Language::kXPath:
      plan->explain_ = "xpath: set-at-a-time evaluator";
      plan->explain_ += plan->stream_query_ != nullptr
                            ? "; stream fallback available (forward rewrite)"
                            : "; no stream fallback";
      break;
    case Language::kDatalog:
      plan->explain_ = "datalog: TMNF grounding + fixpoint";
      break;
    case Language::kCq:
      plan->explain_ = plan->cq_boolean_ ? "cq boolean: class "
                                         : "cq k-ary: class ";
      plan->explain_ += cq::SignatureClassName(plan->cq_class_);
      if (!plan->cq_boolean_) {
        plan->explain_ += " -> acyclic enumeration (Yannakakis)";
      } else if (plan->cq_class_ == cq::SignatureClass::kNpHard) {
        plan->explain_ += " -> backtracking search";
      } else {
        plan->explain_ += " -> X-property evaluation";
      }
      break;
    case Language::kFo:
      plan->explain_ = plan->fo_positive_
                           ? "fo: positive sentence -> Corollary 5.2 pipeline"
                           : "fo: sentence with negation -> naive model "
                             "checking";
      break;
  }
  plan->explain_ += "; est. visits = |Q|*(|D|+1), |Q|=" +
                    std::to_string(QuerySize(plan->query_));
  plan->explain_ += " | ir: " + plan->ir_.Render();
  plan->explain_ += " hash=" + plan->canonical_hash_.ToHex();
  plan->explain_ += " | routes:";
  for (plan::EngineKind kind : plan->eligible_) {
    plan->explain_ += " ";
    plan->explain_ += plan::EngineName(kind);
  }
  plan->compile_ns_ = static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now() - compile_start)
          .count());
  return PlanPtr(std::move(plan));
}

void Plan::BuildLogicalPlan() {
  switch (query_.language) {
    case Language::kXPath:
      ir_ = plan::LowerXPath(*query_.xpath);
      break;
    case Language::kCq:
      ir_ = plan::LowerCq(*query_.cq);
      break;
    case Language::kDatalog:
      ir_ = plan::LowerDatalog(*query_.datalog);
      break;
    case Language::kFo:
      ir_ = plan::LowerFo(*query_.fo);
      break;
  }
  canonical_hash_ = plan::Canonicalize(&ir_);
  CountLowering(query_.language, ir_.structural());

  auto add = [this](plan::EngineKind kind) {
    if (std::find(eligible_.begin(), eligible_.end(), kind) ==
        eligible_.end()) {
      eligible_.push_back(kind);
    }
  };
  add(NativeEngine());

  // Language-native alternates: engines that evaluate the original AST.
  if (query_.language == Language::kXPath) {
    add(plan::EngineKind::kXPathNaive);
    if (stream_query_ != nullptr) add(plan::EngineKind::kXPathStream);
    Result<datalog::Program> translated =
        xpath::XPathToDatalog(*query_.xpath);
    if (translated.ok()) {
      datalog_form_ = std::make_unique<datalog::Program>(
          std::move(translated).value());
      add(plan::EngineKind::kDatalogTmnf);
    }
  }
  if (query_.language == Language::kFo && fo_positive_) {
    add(plan::EngineKind::kFoNaive);
  }

  // Cross-engine eligibility comes from the canonical structural IR. An
  // anchored branch (absolute XPath) has no CQ/twig/FO equivalent — the
  // root constraint is not an axis atom — so it stays with its native
  // engines.
  if (!ir_.structural()) return;
  for (const plan::QueryGraph& branch : ir_.branches) {
    if (branch.anchored) return;
  }

  std::vector<cq::ConjunctiveQuery> cqs;
  bool all_cq = true;
  for (const plan::QueryGraph& branch : ir_.branches) {
    cq::ConjunctiveQuery q;
    if (!plan::GraphToCq(branch, &q) || !q.IsTreeShaped()) {
      all_cq = false;
      break;
    }
    cqs.push_back(std::move(q));
  }
  if (all_cq) {
    cq_branches_ = std::move(cqs);
    if (ir_.arity == 0) add(plan::EngineKind::kDichotomy);
    add(plan::EngineKind::kYannakakis);
  }

  if (ir_.arity >= 1) {
    std::vector<cq::TwigPattern> twigs;
    std::vector<std::vector<int>> cols;
    bool all_twig = true;
    for (const plan::QueryGraph& branch : ir_.branches) {
      cq::TwigPattern pattern;
      std::vector<int> out_cols;
      if (!plan::GraphToTwig(branch, &pattern, &out_cols)) {
        all_twig = false;
        break;
      }
      twigs.push_back(std::move(pattern));
      cols.push_back(std::move(out_cols));
    }
    if (all_twig) {
      twig_branches_ = std::move(twigs);
      twig_out_cols_ = std::move(cols);
      add(plan::EngineKind::kTwigStack);
      add(plan::EngineKind::kStructuralJoins);
    }
  }

  if (ir_.arity == 0) {
    std::vector<std::unique_ptr<fo::Formula>> sentences;
    bool all_fo = true;
    for (const plan::QueryGraph& branch : ir_.branches) {
      std::unique_ptr<fo::Formula> sentence = plan::GraphToFo(branch);
      if (sentence == nullptr) {
        all_fo = false;
        break;
      }
      sentences.push_back(std::move(sentence));
    }
    if (all_fo) {
      fo_branches_ = std::move(sentences);
      add(plan::EngineKind::kFoCorollary52);
      add(plan::EngineKind::kFoNaive);
    }
  }
}

plan::EngineKind Plan::NativeEngine() const {
  switch (query_.language) {
    case Language::kXPath:
      return plan::EngineKind::kXPathSetAtATime;
    case Language::kDatalog:
      return plan::EngineKind::kDatalogTmnf;
    case Language::kCq:
      return cq_boolean_ ? plan::EngineKind::kDichotomy
                         : plan::EngineKind::kYannakakis;
    case Language::kFo:
      return fo_positive_ ? plan::EngineKind::kFoCorollary52
                          : plan::EngineKind::kFoNaive;
  }
  return plan::EngineKind::kXPathSetAtATime;
}

const char* Plan::route_name() const {
  switch (query_.language) {
    case Language::kXPath:
      return "xpath.set_at_a_time";
    case Language::kDatalog:
      return "datalog.tmnf";
    case Language::kCq:
      if (!cq_boolean_) return "cq.yannakakis";
      return cq_class_ == cq::SignatureClass::kNpHard ? "cq.backtracking"
                                                      : "cq.x_property";
    case Language::kFo:
      return fo_positive_ ? "fo.corollary52" : "fo.naive";
  }
  return "unknown";
}

Result<QueryResult> Plan::Run(const Document& doc) const {
  return Execute(doc, ExecContext::Unbounded(), ExecuteOptions{});
}

Result<QueryResult> Plan::Run(const Document& doc,
                              const ExecContext& exec) const {
  return Execute(doc, exec, ExecuteOptions{});
}

Result<QueryResult> Plan::Run(const Document& doc, const ExecContext& exec,
                              bool allow_degraded) const {
  ExecuteOptions options;
  options.allow_degraded = allow_degraded;
  return Execute(doc, exec, options);
}

uint64_t Plan::EstimatedVisits(const Document& doc) const {
  return QuerySize(query_) * (static_cast<uint64_t>(doc.num_nodes()) + 1);
}

bool Plan::PredictsBlowup(const Document& doc, const ExecContext& exec) const {
  const uint64_t budget = exec.limits().visit_budget;
  if (budget == UINT64_MAX) return false;
  const uint64_t used = exec.visits_used();
  const uint64_t remaining = budget > used ? budget - used : 0;
  return EstimatedVisits(doc) > remaining;
}

std::string Plan::ExplainRouting(const Document& doc) const {
  const plan::DocStats stats = plan::DocStats::For(doc);
  const plan::EngineKind native = NativeEngine();
  std::vector<std::pair<uint64_t, plan::EngineKind>> costs;
  for (plan::EngineKind kind : eligible_) {
    uint64_t cost = plan::EstimateCost(kind, ir_, stats);
    if (kind == native) cost -= cost / 5;  // the router's native discount
    costs.emplace_back(cost, kind);
  }
  std::stable_sort(costs.begin(), costs.end(),
                   [](const auto& a, const auto& b) {
                     return a.first < b.first;
                   });
  std::string out = "routing n=" + std::to_string(stats.nodes) + ":";
  for (const auto& [cost, kind] : costs) {
    out += " ";
    out += plan::EngineName(kind);
    out += "=" + std::to_string(cost);
    if (kind == native) out += "*";
  }
  return out;
}

Result<QueryResult> Plan::Execute(const Document& doc,
                                  const ExecContext& exec,
                                  const ExecuteOptions& options) const {
  TREEQ_OBS_SPAN("engine.plan.run");
  TREEQ_OBS_INC("engine.plan.runs");
  // A request that spent its whole queue wait past the deadline should not
  // start evaluating at all.
  TREEQ_RETURN_IF_ERROR(exec.CheckNow());

  if (!options.force_route.empty()) {
    std::optional<plan::EngineKind> kind =
        plan::ParseEngineName(options.force_route);
    if (!kind.has_value()) {
      return Status::InvalidArgument("unknown engine name: " +
                                     options.force_route);
    }
    if (std::find(eligible_.begin(), eligible_.end(), *kind) ==
        eligible_.end()) {
      return Status::Unsupported("engine " + options.force_route +
                                 " is not eligible for this plan");
    }
    TREEQ_OBS_INC("plan.route.forced");
    Result<QueryResult> result = ExecuteEngine(*kind, doc, exec, options);
    if (result.ok()) {
      result.value().route_rationale =
          std::string("forced: ") + plan::EngineName(*kind);
    }
    return result;
  }

  // Budget-bounded requests keep the historical native routing — the
  // degradation gate and every budget/deadline test depends on the native
  // engine's exact charge schedule. The cost router only runs for
  // unbounded requests, where any eligible engine is semantically safe.
  if (exec.limits().visit_budget != UINT64_MAX) {
    return ExecuteEngine(NativeEngine(), doc, exec, options);
  }

  if (TREEQ_FAULT_FIRED("plan.route.decide")) {
    // Injected router failure: fall back to the native engine, the one
    // route that needs no routing decision.
    TREEQ_OBS_INC("plan.route.fallbacks");
    return ExecuteEngine(NativeEngine(), doc, exec, options);
  }

  const plan::DocStats stats = plan::DocStats::For(doc);
  plan::RouteDecision decision =
      plan::Route(ir_, eligible_, NativeEngine(), stats);
  Result<QueryResult> result =
      ExecuteEngine(decision.chosen, doc, exec, options);
  if (result.ok()) {
    result.value().route_rationale = std::move(decision.rationale);
  }
  return result;
}

Result<QueryResult> Plan::ExecuteEngine(plan::EngineKind kind,
                                        const Document& doc,
                                        const ExecContext& exec,
                                        const ExecuteOptions& options) const {
  QueryResult out;
  out.language = query_.language;
  out.engine = plan::EngineName(kind);
  switch (kind) {
    case plan::EngineKind::kXPathSetAtATime: {
      if (options.allow_degraded && stream_query_ != nullptr &&
          PredictsBlowup(doc, exec)) {
        TREEQ_OBS_INC("engine.degraded");
        out.degraded = true;
        out.engine = "xpath.stream";
        TREEQ_ASSIGN_OR_RETURN(
            std::vector<NodeId> selected,
            stream::StreamMatcher::SelectFromTree(*stream_query_, doc.tree(),
                                                  /*stats=*/nullptr, exec));
        NodeSet nodes(doc.num_nodes());
        for (NodeId v : selected) nodes.Insert(v);
        out.value.emplace<NodeSet>(std::move(nodes));
        return out;
      }
      // Parallel routing: only when asked for, only with a runner to run
      // the forked tasks, and only when the visit estimate says the query
      // is big enough to amortize fork/merge overhead. The parallel
      // evaluator's answer is bit-identical to the serial one.
      if (options.parallelism >= 2 && options.runner != nullptr &&
          EstimatedVisits(doc) >= options.parallel_min_visits) {
        TREEQ_OBS_INC("engine.parallel_runs");
        par::ParOptions par_options;
        par_options.parallelism = options.parallelism;
        par_options.runner = options.runner;
        par_options.min_context = options.parallel_min_context;
        par::ParStats par_stats;
        TREEQ_ASSIGN_OR_RETURN(
            NodeSet nodes,
            xpath::EvalQueryFromRootParallel(doc, *query_.xpath, exec,
                                             par_options, &par_stats));
        out.partitions = par_stats.partitions;
        out.parallel_ns = par_stats.parallel_ns;
        out.merge_ns = par_stats.merge_ns;
        out.value.emplace<NodeSet>(std::move(nodes));
        return out;
      }
      TREEQ_ASSIGN_OR_RETURN(
          NodeSet nodes, xpath::EvalQueryFromRoot(doc, *query_.xpath, exec,
                                                  options.axis_memo));
      out.value.emplace<NodeSet>(std::move(nodes));
      return out;
    }
    case plan::EngineKind::kXPathNaive: {
      TREEQ_ASSIGN_OR_RETURN(
          NodeSet nodes,
          xpath::NaiveEvalPath(doc.tree(), doc.orders(), *query_.xpath,
                               doc.tree().root(), /*budget=*/UINT64_MAX,
                               /*stats=*/nullptr, exec));
      out.value.emplace<NodeSet>(std::move(nodes));
      return out;
    }
    case plan::EngineKind::kXPathStream: {
      // An honest routing choice (not degradation): the streaming
      // evaluator's answer is exact, so the result is cacheable.
      TREEQ_ASSIGN_OR_RETURN(
          std::vector<NodeId> selected,
          stream::StreamMatcher::SelectFromTree(*stream_query_, doc.tree(),
                                                /*stats=*/nullptr, exec));
      NodeSet nodes(doc.num_nodes());
      for (NodeId v : selected) nodes.Insert(v);
      out.value.emplace<NodeSet>(std::move(nodes));
      return out;
    }
    case plan::EngineKind::kTwigStack:
    case plan::EngineKind::kStructuralJoins: {
      NodeSet nodes(doc.num_nodes());
      TupleSet tuples;
      for (size_t b = 0; b < twig_branches_.size(); ++b) {
        Result<TupleSet> matches =
            kind == plan::EngineKind::kTwigStack
                ? cq::TwigStackJoin(twig_branches_[b], doc,
                                    /*stats=*/nullptr, exec)
                : cq::TwigByStructuralJoins(twig_branches_[b], doc.tree(),
                                            doc.orders(), /*stats=*/nullptr,
                                            exec);
        TREEQ_RETURN_IF_ERROR(matches.status());
        const std::vector<int>& cols = twig_out_cols_[b];
        for (const std::vector<NodeId>& match : matches.value()) {
          if (ir_.arity == 1) {
            nodes.Insert(match[static_cast<size_t>(cols[0])]);
          } else {
            std::vector<NodeId> tuple;
            tuple.reserve(cols.size());
            for (int col : cols) {
              tuple.push_back(match[static_cast<size_t>(col)]);
            }
            tuples.push_back(std::move(tuple));
          }
        }
      }
      if (ir_.arity == 1) {
        out.value.emplace<NodeSet>(std::move(nodes));
      } else {
        NormalizeTuples(&tuples);
        out.value.emplace<TupleSet>(std::move(tuples));
      }
      return out;
    }
    case plan::EngineKind::kYannakakis: {
      if (query_.language == Language::kCq && !cq_boolean_) {
        TREEQ_ASSIGN_OR_RETURN(
            TupleSet tuples,
            cq::EvaluateAcyclic(*query_.cq, doc, UINT64_MAX, exec,
                                options.axis_memo));
        if (ir_.arity == 1) {
          NodeSet nodes(doc.num_nodes());
          for (const std::vector<NodeId>& t : tuples) nodes.Insert(t[0]);
          out.value.emplace<NodeSet>(std::move(nodes));
        } else {
          NormalizeTuples(&tuples);
          out.value.emplace<TupleSet>(std::move(tuples));
        }
        return out;
      }
      // Cross-engine (or Boolean) evaluation over the canonical branches.
      NodeSet nodes(doc.num_nodes());
      TupleSet tuples;
      bool answer = false;
      for (const cq::ConjunctiveQuery& branch : cq_branches_) {
        cq::ConjunctiveQuery query = branch;
        if (ir_.arity == 0) {
          // Satisfiability via enumeration: project onto one variable and
          // test non-emptiness.
          query.AddHeadVar(0);
        }
        TREEQ_ASSIGN_OR_RETURN(
            TupleSet matches,
            cq::EvaluateAcyclic(query, doc, UINT64_MAX, exec,
                                options.axis_memo));
        if (ir_.arity == 0) {
          answer = answer || !matches.empty();
        } else if (ir_.arity == 1) {
          for (const std::vector<NodeId>& t : matches) nodes.Insert(t[0]);
        } else {
          for (std::vector<NodeId>& t : matches) {
            tuples.push_back(std::move(t));
          }
        }
      }
      if (ir_.arity == 0) {
        out.value.emplace<bool>(answer);
      } else if (ir_.arity == 1) {
        out.value.emplace<NodeSet>(std::move(nodes));
      } else {
        NormalizeTuples(&tuples);
        out.value.emplace<TupleSet>(std::move(tuples));
      }
      return out;
    }
    case plan::EngineKind::kDichotomy: {
      if (query_.language == Language::kCq) {
        bool used_tractable_path = false;
        TREEQ_ASSIGN_OR_RETURN(
            bool answer,
            cq::EvaluateBooleanDichotomy(*query_.cq, doc,
                                         &used_tractable_path, exec));
        out.value.emplace<bool>(answer);
        // Report the route the dichotomy actually took, not the prediction.
        out.engine =
            used_tractable_path ? "cq.x_property" : "cq.backtracking";
        return out;
      }
      bool answer = false;
      for (const cq::ConjunctiveQuery& branch : cq_branches_) {
        if (answer) break;
        TREEQ_ASSIGN_OR_RETURN(
            bool branch_answer,
            cq::EvaluateBooleanDichotomy(branch, doc,
                                         /*used_tractable_path=*/nullptr,
                                         exec));
        answer = branch_answer;
      }
      out.value.emplace<bool>(answer);
      return out;
    }
    case plan::EngineKind::kDatalogTmnf: {
      const datalog::Program& program = query_.language == Language::kDatalog
                                            ? *query_.datalog
                                            : *datalog_form_;
      TREEQ_ASSIGN_OR_RETURN(
          NodeSet nodes,
          datalog::EvaluateDatalog(program, doc, /*stats=*/nullptr, exec));
      out.value.emplace<NodeSet>(std::move(nodes));
      return out;
    }
    case plan::EngineKind::kFoCorollary52: {
      if (query_.language == Language::kFo) {
        TREEQ_ASSIGN_OR_RETURN(
            bool answer,
            fo::EvaluateSentencePositive(*query_.fo, doc, /*stats=*/nullptr,
                                         exec));
        out.value.emplace<bool>(answer);
        return out;
      }
      bool answer = false;
      for (const std::unique_ptr<fo::Formula>& sentence : fo_branches_) {
        if (answer) break;
        TREEQ_ASSIGN_OR_RETURN(
            bool branch_answer,
            fo::EvaluateSentencePositive(*sentence, doc, /*stats=*/nullptr,
                                         exec));
        answer = branch_answer;
      }
      out.value.emplace<bool>(answer);
      return out;
    }
    case plan::EngineKind::kFoNaive: {
      if (query_.language == Language::kFo) {
        TREEQ_ASSIGN_OR_RETURN(
            bool answer,
            fo::EvaluateSentenceNaive(*query_.fo, doc, UINT64_MAX, exec));
        out.value.emplace<bool>(answer);
        return out;
      }
      bool answer = false;
      for (const std::unique_ptr<fo::Formula>& sentence : fo_branches_) {
        if (answer) break;
        TREEQ_ASSIGN_OR_RETURN(
            bool branch_answer,
            fo::EvaluateSentenceNaive(*sentence, doc, UINT64_MAX, exec));
        answer = branch_answer;
      }
      out.value.emplace<bool>(answer);
      return out;
    }
  }
  return Status::Internal("plan with invalid engine");
}

}  // namespace engine
}  // namespace treeq
