#ifndef TREEQ_ENGINE_ENGINE_H_
#define TREEQ_ENGINE_ENGINE_H_

/// \file engine.h
/// Umbrella header for the treeq serving engine. One include gives the
/// whole concurrent batch-serving surface:
///
///   DocumentStore store;                       // named immutable corpus
///   auto doc = store.Add("catalog", std::move(tree)).value();
///   PlanCache cache(/*capacity=*/128);         // (language, text) -> Plan
///   auto plan = cache.GetOrCompile(Language::kXPath, "//product").value();
///   Executor exec({.num_workers = 8});
///   auto future = exec.Submit(plan, doc);      // bounded MPMC hand-off
///   QueryResult r = future.get().value();
///
/// See DESIGN.md ("The serving engine") for the thread-safety contract and
/// plan-cache semantics.

#include "engine/document_store.h"
#include "engine/executor.h"
#include "engine/plan.h"
#include "engine/plan_cache.h"

#endif  // TREEQ_ENGINE_ENGINE_H_
