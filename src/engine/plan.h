#ifndef TREEQ_ENGINE_PLAN_H_
#define TREEQ_ENGINE_PLAN_H_

#include <memory>
#include <string>
#include <string_view>

#include "cq/dichotomy.h"
#include "query/parse.h"
#include "tree/axes.h"
#include "tree/document.h"
#include "util/status.h"

/// \file plan.h
/// A `Plan` is a query parsed, validated, and routed once, then executable
/// any number of times against any Document — the parse-once/run-many half
/// of the serving story (the PlanCache in plan_cache.h is the other half).
///
/// Compile() front-loads everything that depends only on the query text:
///   - parsing (query/parse.h, all errors kParseError + byte offset);
///   - CQ: dichotomy classification (Theorem 6.8) and shape checks, so Run
///     routes straight to X-property or Yannakakis evaluation;
///   - FO: sentence check and positivity, so Run routes to the Corollary
///     5.2 pipeline or the naive oracle without re-walking the AST.
///
/// A compiled Plan is immutable; Run is const and thread-safe, so one
/// PlanPtr is shared freely across the Executor's workers.

namespace treeq {
namespace engine {

class Plan;

/// Shared read-only handle to a compiled plan.
using PlanPtr = std::shared_ptr<const Plan>;

/// The answer of one (plan, document) execution. Node-selecting languages
/// (XPath, datalog, k-ary CQ) fill `nodes` or `tuples`; Boolean ones
/// (Boolean CQ, FO sentences) fill `boolean`.
struct QueryResult {
  Language language = Language::kXPath;
  bool is_boolean = false;
  bool boolean = false;
  NodeSet nodes;                          // kXPath, kDatalog
  std::vector<std::vector<NodeId>> tuples;  // k-ary kCq

  /// Uniform "how much did this select" accessor for logging/benches.
  size_t cardinality() const {
    if (is_boolean) return boolean ? 1 : 0;
    if (!tuples.empty()) return tuples.size();
    return static_cast<size_t>(nodes.size());
  }
};

class Plan {
 public:
  /// Parses and validates `text` once. On success the plan is ready for
  /// concurrent Run() calls.
  static Result<PlanPtr> Compile(Language language, std::string_view text);

  Language language() const { return query_.language; }
  const std::string& text() const { return text_; }

  /// Evaluates the plan on `doc` with the language's production evaluator:
  /// set-at-a-time XPath, TMNF datalog pipeline, dichotomy-routed CQ,
  /// Corollary 5.2 positive FO (naive model checking for general FO
  /// sentences). Thread-safe; touches no mutable plan state.
  Result<QueryResult> Run(const Document& doc) const;

  /// Compile-time routing facts (for tests, logs, and the bench).
  /// CQ only: the Theorem 6.8 signature class.
  cq::SignatureClass cq_class() const { return cq_class_; }
  /// FO only: whether Run uses the Corollary 5.2 pipeline.
  bool fo_positive() const { return fo_positive_; }

 private:
  Plan() = default;

  std::string text_;
  ParsedQuery query_;
  cq::SignatureClass cq_class_ = cq::SignatureClass::kTau1;
  bool cq_boolean_ = false;
  bool fo_positive_ = false;
};

}  // namespace engine
}  // namespace treeq

#endif  // TREEQ_ENGINE_PLAN_H_
