#ifndef TREEQ_ENGINE_PLAN_H_
#define TREEQ_ENGINE_PLAN_H_

#include <memory>
#include <string>
#include <string_view>

#include "cq/dichotomy.h"
#include "cq/twig_join.h"
#include "engine/query.h"
#include "plan/cost.h"
#include "plan/ir.h"
#include "query/parse.h"
#include "tree/axes.h"
#include "tree/document.h"
#include "util/exec_context.h"
#include "util/status.h"
#include "util/task_runner.h"

/// \file plan.h
/// A `Plan` is a query parsed, validated, and routed once, then executable
/// any number of times against any Document — the parse-once/run-many half
/// of the serving story (the PlanCache in plan_cache.h is the other half).
///
/// Compile() front-loads everything that depends only on the query text:
///   - parsing (query/parse.h, all errors kParseError + byte offset);
///   - lowering into the unified logical IR (plan/ir.h) and
///     canonicalization (plan/canonicalize.h), giving the plan a stable
///     128-bit identity shared by semantically identical queries across
///     languages — PlanCache and ResultCache key on it;
///   - CQ: dichotomy classification (Theorem 6.8) and shape checks, so Run
///     routes straight to X-property or Yannakakis evaluation;
///   - FO: sentence check and positivity, so Run routes to the Corollary
///     5.2 pipeline or the naive oracle without re-walking the AST;
///   - eligibility: the list of physical engines (plan/cost.h) that can
///     answer this plan, native ones plus every engine the IR's structural
///     form converts to.
///
/// Execute() picks among the eligible engines with the cost-based router
/// (plan/route.h) when the request is unbounded; budget-bounded requests
/// keep the historical native routing (including the streaming degradation
/// gate), so budget semantics are unchanged. ExecuteOptions::force_route
/// pins a specific engine for tests and experiments.
///
/// A compiled Plan is immutable; Run is const and thread-safe, so one
/// PlanPtr is shared freely across the Executor's workers.

namespace treeq {
namespace engine {

class Plan;

/// Shared read-only handle to a compiled plan.
using PlanPtr = std::shared_ptr<const Plan>;

/// The unified result type (engine/query.h) lives in the top-level treeq
/// namespace; re-exported here where it historically lived.
using ::treeq::QueryResult;

/// Estimated-visits floor below which Execute keeps an XPath plan serial
/// even when parallelism is requested: a query too small to amortize the
/// fork/merge overhead of the partition-parallel kernels.
inline constexpr uint64_t kParallelMinEstimatedVisits = 1 << 16;

/// Per-execution knobs for Plan::Execute. Default-constructed options
/// reproduce Run(doc, exec) exactly.
struct ExecuteOptions {
  /// Graceful degradation under a budget (see Run's three-arg overload).
  bool allow_degraded = false;

  /// Intra-query parallelism degree. 0 (or 1) keeps the evaluation serial
  /// and bit-identical to Run; >= 2 lets an XPath plan fork its axis-image
  /// steps across that many subtree partitions on `runner`. Ignored (the
  /// run stays serial) when `runner` is null.
  int parallelism = 0;

  /// Who runs forked partition tasks. The Executor passes its own
  /// fork-join runner (engine/task_group.h); standalone callers can pass a
  /// par::ThreadPerTaskRunner or par::SerialRunner (util/task_runner.h).
  par::TaskRunner* runner = nullptr;

  /// Classifier floor: plans whose EstimatedVisits(doc) is below this stay
  /// serial regardless of `parallelism`. Tests lower it to force the
  /// parallel path on small documents.
  uint64_t parallel_min_visits = kParallelMinEstimatedVisits;

  /// Per-step floor: axis steps whose context set is smaller than this
  /// stay serial inside a parallel run (par::ParOptions::min_context).
  int parallel_min_context = 1024;

  /// Cross-query axis-image memo (tree/axes.h; in practice a
  /// cache::EvalCache::Memo bound to the document's epoch). When set, the
  /// serial XPath route and the k-ary CQ semijoin sweeps consult it per
  /// axis step and store fresh images back — results stay bit-identical;
  /// memo hits charge the cheap lookup instead of the saved kernel work.
  /// The parallel XPath route ignores it (per-partition charge shares and
  /// whole-set memo entries don't compose).
  AxisImageMemo* axis_memo = nullptr;

  /// When non-empty, bypasses the router and runs this engine (a
  /// plan::EngineName, e.g. "cq.twigstack"). InvalidArgument for unknown
  /// names; Unsupported when the engine is not in EligibleEngines().
  /// Tests use it to prove every eligible engine answers identically.
  std::string force_route;
};

class Plan {
 public:
  /// Parses and validates `text` once. On success the plan is ready for
  /// concurrent Run() calls. The two-argument form compiles under default
  /// ParseOptions; the three-argument form pins the parse dialect, which
  /// the plan remembers (parse_options()) so caches can key on it.
  static Result<PlanPtr> Compile(Language language, std::string_view text);
  static Result<PlanPtr> Compile(Language language, std::string_view text,
                                 const ParseOptions& options);

  Language language() const { return query_.language; }
  const std::string& text() const { return text_; }

  /// The dialect options this plan was compiled under. Part of the plan's
  /// identity: the same text can parse differently under different
  /// options, so PlanCache and the result cache key on these too.
  const ParseOptions& parse_options() const { return parse_options_; }

  /// Evaluates the plan on `doc` with the language's production evaluator:
  /// set-at-a-time XPath, TMNF datalog pipeline, dichotomy-routed CQ,
  /// Corollary 5.2 positive FO (naive model checking for general FO
  /// sentences). Thread-safe; touches no mutable plan state.
  ///
  /// With `options.parallelism` >= 2 and a runner, an XPath plan big
  /// enough for the classifier (`options.parallel_min_visits`) evaluates
  /// via the partition-parallel kernels — same NodeSet, bit for bit — and
  /// the result carries partitions/parallel_ns/merge_ns attribution.
  /// Every evaluator charge goes to `exec`, so the run aborts with
  /// DeadlineExceeded / ResourceExhausted / Cancelled as soon as a limit
  /// trips (util/exec_context.h); with `options.allow_degraded`, an XPath
  /// plan predicted to blow the visit budget falls back to the
  /// O(depth * |Q|)-memory streaming evaluator over the forward rewrite
  /// computed at Compile() time, flagged `degraded`.
  Result<QueryResult> Execute(const Document& doc, const ExecContext& exec,
                              const ExecuteOptions& options) const;

  /// Thin wrappers over Execute with default options (kept for existing
  /// callers; serial, unbounded unless `exec` is given).
  Result<QueryResult> Run(const Document& doc) const;
  Result<QueryResult> Run(const Document& doc, const ExecContext& exec) const;
  Result<QueryResult> Run(const Document& doc, const ExecContext& exec,
                          bool allow_degraded) const;

  /// Wall time Compile() spent on this plan (parse + validate + classify +
  /// stream-rewrite). A cache-hit request did not pay it; per-query
  /// profiles report compile_ns() for cold requests and 0 for hits.
  uint64_t compile_ns() const { return compile_ns_; }

  /// One-line compile-time classification: why Run routes this query where
  /// it does (dichotomy class, FO positivity, stream capability, and the
  /// |Q|*(|D|+1) visit-estimate formula). Built once at Compile(); cheap
  /// to copy into profiles and the slow-query log.
  const std::string& Explain() const { return explain_; }

  /// The evaluator Run routes to, as decided at compile time (a string
  /// literal). Run's result carries the same name in QueryResult::engine —
  /// except under degradation, where the result says "xpath.stream".
  const char* route_name() const;

  /// Compile-time routing facts (for tests, logs, and the bench).
  /// CQ only: the Theorem 6.8 signature class.
  cq::SignatureClass cq_class() const { return cq_class_; }
  /// FO only: whether Run uses the Corollary 5.2 pipeline.
  bool fo_positive() const { return fo_positive_; }
  /// XPath only: whether the streaming fallback is available (the query is
  /// conjunctive, rewrites to a forward query, and supports selection).
  bool stream_capable() const { return stream_query_ != nullptr; }

  /// The deterministic work estimate the degradation classifier compares
  /// against the visit budget: |Q| * (|D| + 1) charge units, mirroring the
  /// set-at-a-time evaluator's charge schedule.
  uint64_t EstimatedVisits(const Document& doc) const;

  /// The canonical logical plan (plan/ir.h) this query lowered to, and its
  /// stable 128-bit identity. Dialect-insensitive: semantically identical
  /// queries in any language share the hash.
  const plan::LogicalPlan& ir() const { return ir_; }
  plan::CanonicalHash canonical_hash() const { return canonical_hash_; }

  /// Every physical engine that can answer this plan, native first. Valid
  /// values for ExecuteOptions::force_route (via plan::EngineName).
  const std::vector<plan::EngineKind>& EligibleEngines() const {
    return eligible_;
  }

  /// The engine the query's own language pipeline uses — the router's
  /// fallback and the recipient of its native discount.
  plan::EngineKind NativeEngine() const;

  /// Runtime routing table for `doc`: every eligible engine with its
  /// estimated cost, cheapest first, one line per engine. Does not
  /// execute anything.
  std::string ExplainRouting(const Document& doc) const;

 private:
  Plan() = default;

  bool PredictsBlowup(const Document& doc, const ExecContext& exec) const;

  /// Lowers query_ into ir_, canonicalizes, and computes eligible_ plus
  /// the cross-engine forms (twig patterns, CQ branches, FO sentences,
  /// datalog program). Called once at the end of Compile().
  void BuildLogicalPlan();

  /// Runs one specific engine. `kind` must be eligible. The native XPath
  /// arm keeps the degradation and parallel gates.
  Result<QueryResult> ExecuteEngine(plan::EngineKind kind,
                                    const Document& doc,
                                    const ExecContext& exec,
                                    const ExecuteOptions& options) const;

  std::string text_;
  ParseOptions parse_options_;
  ParsedQuery query_;
  std::string explain_;
  uint64_t compile_ns_ = 0;
  cq::SignatureClass cq_class_ = cq::SignatureClass::kTau1;
  bool cq_boolean_ = false;
  bool fo_positive_ = false;
  /// Forward rewrite of an XPath query usable by the streaming fallback;
  /// null when the query is outside the streamable fragment.
  std::unique_ptr<xpath::PathExpr> stream_query_;

  /// Canonical logical IR + identity (see ir()).
  plan::LogicalPlan ir_;
  plan::CanonicalHash canonical_hash_;
  /// Engines that can answer this plan, native first.
  std::vector<plan::EngineKind> eligible_;
  /// Cross-engine forms synthesized from the canonical IR (empty/null when
  /// the matching engine is not eligible). One entry per IR branch.
  std::vector<cq::ConjunctiveQuery> cq_branches_;
  std::vector<cq::TwigPattern> twig_branches_;
  std::vector<std::vector<int>> twig_out_cols_;
  std::vector<std::unique_ptr<fo::Formula>> fo_branches_;
  /// XPath only: the TMNF translation (xpath/to_datalog.h), when it exists.
  std::unique_ptr<datalog::Program> datalog_form_;
};

}  // namespace engine
}  // namespace treeq

#endif  // TREEQ_ENGINE_PLAN_H_
