#ifndef TREEQ_ENGINE_EXECUTOR_H_
#define TREEQ_ENGINE_EXECUTOR_H_

#include <atomic>
#include <chrono>
#include <cstddef>
#include <functional>
#include <future>
#include <mutex>
#include <optional>
#include <span>
#include <thread>
#include <vector>

#include "cache/eval_cache.h"
#include "cache/result_cache.h"
#include "engine/mpmc_queue.h"
#include "engine/plan.h"
#include "engine/task_group.h"
#include "tree/document.h"
#include "util/exec_context.h"
#include "util/status.h"
#include "util/task_runner.h"

/// \file executor.h
/// A fixed-size worker pool that evaluates (plan, document) requests
/// concurrently. Submit() enqueues onto a bounded MPMC queue (mpmc_queue.h)
/// and returns a future; RunBatch() is the submit-all/wait-all convenience
/// the bench and example use. Plans and documents are immutable and shared
/// by shared_ptr, so a request needs no locking beyond the queue hand-off.
///
/// Observability under concurrency: each worker installs an
/// obs::ShadowCounters, so the thousands of counter increments a single
/// evaluation performs (xpath.axis_ops, datalog.ground_clauses, ...) land
/// in a thread-private buffer instead of contending on shared cache lines.
/// The buffer is merged into the global StatsRegistry at each request
/// boundary, *before* the request's future is fulfilled: once every future
/// of a batch is ready, the registry totals are exact.
///
/// Backpressure: Submit blocks while the queue is full — a heavy client
/// slows down rather than ballooning memory — unless the request opts into
/// admission control (SubmitOptions::reject_when_full), in which case a
/// saturated queue rejects immediately with Unavailable (counted as
/// `engine.rejected`). Destruction closes the queue, drains remaining
/// requests (their futures complete), and joins.
///
/// Bounded requests: Submit with SubmitOptions attaches an ExecContext
/// (util/exec_context.h) carrying the request's deadline and budgets; the
/// returned Submission exposes Cancel(), and the worker threads the context
/// through Plan::Run so evaluation aborts cooperatively.
///
/// Cross-query reuse (Options::eval_cache / result_cache / singleflight;
/// all off by default — a default-constructed Executor behaves exactly as
/// before):
///   - With a result cache, an *unbounded* request (no timeout, no visit
///     or memory budget, bypass_cache unset) whose (doc epoch, dialect,
///     text) key is resident returns an already-ready future from the
///     Submit call itself — it never touches the worker queue, and its
///     context is charged 1 unit (the lookup), not the saved work. Only
///     ok, non-degraded results are ever inserted.
///   - With singleflight on, concurrent identical unbounded Submits
///     collapse: the first becomes the leader and executes; the rest get
///     futures fulfilled with copies of the leader's outcome — including
///     its error or cancellation, which followers share by design.
///   - With an eval cache, every executed request (bounded or not, unless
///     bypass_cache) evaluates under an axis-image memo bound to its
///     document's epoch, reusing AxisImage results across queries.
/// Bounded requests are never served from (or collapsed into) the result
/// cache, so their deadline/budget/cancel semantics stay exactly
/// per-request.

namespace treeq {
namespace engine {

/// One unit of serving work.
struct Request {
  PlanPtr plan;
  DocumentPtr document;
};

/// Per-request limits and policies for Submit.
struct SubmitOptions {
  /// Wall-clock deadline measured from Submit; zero = none. Queue wait
  /// counts against it: a request popped after its deadline fails without
  /// evaluating.
  std::chrono::nanoseconds timeout = std::chrono::nanoseconds::zero();
  /// Deterministic work budget in charge units; UINT64_MAX = unlimited.
  uint64_t visit_budget = UINT64_MAX;
  /// Bytes of evaluator intermediate state; UINT64_MAX = unlimited.
  uint64_t memory_budget = UINT64_MAX;
  /// Reject immediately (Unavailable) instead of blocking when the queue
  /// is full.
  bool reject_when_full = false;
  /// Allow the plan to fall back to the streaming evaluator when the
  /// budget classifier predicts the in-memory evaluator would blow up.
  bool allow_degraded = false;
  /// Set by callers that resolved the plan through a PlanCache hit
  /// (PlanCache::GetOrCompile's `was_hit` out-param). The per-query
  /// profile then reports compile_ns = 0: a hit did not pay compilation.
  bool plan_cache_hit = false;
  /// Intra-query parallelism degree for this request: 0 (the default)
  /// evaluates serially — bit-identical to an unparallel executor — and
  /// >= 2 lets an XPath plan big enough for the classifier fork its axis
  /// steps across that many subtree partitions, run as child tasks on
  /// this same worker pool (engine/task_group.h).
  int parallelism = 0;
  /// Opt this request out of every cache layer: no result-cache lookup or
  /// insert, no singleflight collapse, no eval-cache memo. For requests
  /// that must observe a fresh evaluation (and for the bench's cold path).
  bool bypass_cache = false;
};

/// One Submit call as a value: the plan, the document, and the per-request
/// options, carried together instead of as a growing positional argument
/// list. New call sites should build one of these and use
/// Submit(QueryRequest); the positional overloads remain as wrappers.
struct QueryRequest {
  PlanPtr plan;
  DocumentPtr document;
  SubmitOptions options;
};

/// Handle for one bounded submission: the result future plus the request's
/// cancel handle. `context` is never null; it is shared with the worker.
struct Submission {
  std::future<Result<QueryResult>> future;
  ExecContextPtr context;

  /// Requests cooperative cancellation; the future then completes with
  /// Status::Cancelled (unless the result was already computed).
  void Cancel() {
    if (context != nullptr) context->Cancel();
  }
};

class Executor {
 public:
  struct Options {
    /// 0 = std::thread::hardware_concurrency (at least 1).
    int num_workers = 0;
    /// Max queued (not yet started) requests before Submit blocks.
    size_t queue_capacity = 256;
    /// Cross-query axis-image memo (cache/eval_cache.h). Borrowed, not
    /// owned; must outlive the executor. Null = no eval caching.
    cache::EvalCache* eval_cache = nullptr;
    /// Whole-query result cache (cache/result_cache.h). Borrowed, not
    /// owned; must outlive the executor. Null = no result caching.
    cache::ResultCache* result_cache = nullptr;
    /// Collapse concurrent identical unbounded Submits into one execution
    /// (see the file comment). Requires nothing besides itself — it works
    /// with or without a result cache — but only takes effect for
    /// cache-eligible (unbounded, non-bypass) requests.
    bool singleflight = false;
  };

  /// Default options: one worker per hardware thread, queue of 256.
  Executor();
  explicit Executor(const Options& options);
  ~Executor();

  Executor(const Executor&) = delete;
  Executor& operator=(const Executor&) = delete;

  /// The front door: enqueues one request. Attaches an ExecContext built
  /// from `request.options` and returns it alongside the future so the
  /// caller can Cancel(); respects `options.reject_when_full` for
  /// admission control and `options.parallelism` for intra-query
  /// parallelism. The future carries the evaluation result, or an
  /// InvalidArgument status for a null plan/document; after Shutdown() it
  /// is an already-failed Unavailable future.
  Submission Submit(QueryRequest request);

  /// Batched front door: submits every request and returns one Submission
  /// per request, in request order. Beyond N Submit calls, the batch
  /// - warms each distinct document once (label index; plus, with an eval
  ///   cache attached, the axis-image memo the requests then share), and
  /// - dedupes identical work WITHIN the batch: cache-eligible requests
  ///   with the same (document epoch, dialect, text) collapse into one
  ///   execution via the in-flight table, whether or not the executor-wide
  ///   singleflight flag is set.
  /// Per-request SubmitOptions (deadline, budgets, cancellation,
  /// bypass_cache) are honored individually: bounded requests never
  /// collapse and execute under their own contexts.
  std::vector<Submission> SubmitBatch(std::span<QueryRequest> requests);

  /// Submits every request, then waits for all of them. Results are in
  /// request order.
  std::vector<Result<QueryResult>> RunBatch(std::vector<Request> requests);

  /// Stops accepting new work, drains queued requests (their futures
  /// complete), and joins the workers. Idempotent and safe to race with
  /// Submit: a Submit that loses the race gets an Unavailable future
  /// instead of a broken promise.
  void Shutdown();

  int num_workers() const { return static_cast<int>(workers_.size()); }

  /// The fork-join runner that schedules par:: child tasks on this pool
  /// (engine/task_group.h). Exposed so callers driving Plan::Execute
  /// directly can still borrow the executor's workers for parallelism.
  par::TaskRunner& task_runner();

  /// The singleflight in-flight table, read-only. The fault storm harness
  /// and the churn tests assert it drains to empty (no leaked flights)
  /// once every submitted future is ready.
  const cache::InflightTable& inflight() const { return inflight_; }

 private:
  friend class TaskGroupRunner;

  struct Task {
    PlanPtr plan;
    DocumentPtr document;
    ExecContextPtr context;  // null = unbounded
    bool allow_degraded = false;
    int parallelism = 0;
    bool bypass_cache = false;
    /// Set for cache-eligible requests that missed the result cache: the
    /// worker inserts the finished result under this key, and — when
    /// `flight_leader` — completes the in-flight table entry, fanning the
    /// outcome out to collapsed followers.
    std::optional<cache::ResultKey> result_key;
    bool flight_leader = false;
    /// Profile metadata stamped at Submit (obs-enabled builds; zero
    /// otherwise): steady-clock enqueue time for the queue-wait histogram,
    /// the process-unique query id, and the caller's plan-cache verdict.
    uint64_t enqueue_ns = 0;
    uint64_t profile_id = 0;
    bool cache_hit = false;
    std::promise<Result<QueryResult>> promise;
  };

  /// One queue entry: a client request OR a forked child task of an
  /// in-flight request (fork-join, engine/task_group.h). Children are
  /// pushed to the queue front and requests to the back, so children are
  /// always ahead of requests — the invariant RunChildren's help loop
  /// relies on.
  struct WorkItem {
    std::optional<Task> request;
    std::function<void()> child;
    bool is_child() const { return !request.has_value(); }
  };

  /// Submit with an explicit collapse policy (Submit uses the executor's
  /// singleflight flag; SubmitBatch forces collapsing within the batch).
  Submission SubmitWithCollapse(QueryRequest request, bool collapse);
  Submission SubmitTask(Task task, bool reject_when_full);
  void WorkerLoop();

  /// Fork-join: runs every closure exactly once — on this pool's workers,
  /// on the calling thread, or both — and returns when all are done.
  /// Callable from worker threads (a worker blocked on its children
  /// help-runs queued child tasks instead of sleeping, so a pool of any
  /// size makes progress) and from external threads. Child tasks must not
  /// fork again.
  void RunChildren(std::vector<std::function<void()>> tasks);

  BoundedQueue<WorkItem> queue_;
  TaskGroupRunner group_runner_{this};
  std::atomic<bool> shutdown_{false};
  std::mutex join_mu_;
  std::vector<std::thread> workers_;
  /// Cache wiring (Options; borrowed pointers, null = feature off).
  cache::EvalCache* const eval_cache_ = nullptr;
  cache::ResultCache* const result_cache_ = nullptr;
  const bool singleflight_ = false;
  cache::InflightTable inflight_;
};

}  // namespace engine

/// The unified request type, re-exported at the top level to pair with
/// treeq::QueryResult (engine/query.h).
using engine::QueryRequest;

}  // namespace treeq

#endif  // TREEQ_ENGINE_EXECUTOR_H_
