#ifndef TREEQ_ENGINE_EXECUTOR_H_
#define TREEQ_ENGINE_EXECUTOR_H_

#include <cstddef>
#include <future>
#include <thread>
#include <vector>

#include "engine/mpmc_queue.h"
#include "engine/plan.h"
#include "tree/document.h"
#include "util/status.h"

/// \file executor.h
/// A fixed-size worker pool that evaluates (plan, document) requests
/// concurrently. Submit() enqueues onto a bounded MPMC queue (mpmc_queue.h)
/// and returns a future; RunBatch() is the submit-all/wait-all convenience
/// the bench and example use. Plans and documents are immutable and shared
/// by shared_ptr, so a request needs no locking beyond the queue hand-off.
///
/// Observability under concurrency: each worker installs an
/// obs::ShadowCounters, so the thousands of counter increments a single
/// evaluation performs (xpath.axis_ops, datalog.ground_clauses, ...) land
/// in a thread-private buffer instead of contending on shared cache lines.
/// The buffer is merged into the global StatsRegistry at each request
/// boundary, *before* the request's future is fulfilled: once every future
/// of a batch is ready, the registry totals are exact.
///
/// Backpressure: Submit blocks while the queue is full — a heavy client
/// slows down rather than ballooning memory. Destruction closes the queue,
/// drains remaining requests (their futures complete), and joins.

namespace treeq {
namespace engine {

/// One unit of serving work.
struct Request {
  PlanPtr plan;
  DocumentPtr document;
};

class Executor {
 public:
  struct Options {
    /// 0 = std::thread::hardware_concurrency (at least 1).
    int num_workers = 0;
    /// Max queued (not yet started) requests before Submit blocks.
    size_t queue_capacity = 256;
  };

  /// Default options: one worker per hardware thread, queue of 256.
  Executor();
  explicit Executor(const Options& options);
  ~Executor();

  Executor(const Executor&) = delete;
  Executor& operator=(const Executor&) = delete;

  /// Enqueues one request. The future carries the evaluation result, or an
  /// InvalidArgument status for a null plan/document. Blocks while the
  /// queue is full; returns an already-failed future after shutdown began.
  std::future<Result<QueryResult>> Submit(PlanPtr plan, DocumentPtr document);

  /// Submits every request, then waits for all of them. Results are in
  /// request order.
  std::vector<Result<QueryResult>> RunBatch(std::vector<Request> requests);

  int num_workers() const { return static_cast<int>(workers_.size()); }

 private:
  struct Task {
    PlanPtr plan;
    DocumentPtr document;
    std::promise<Result<QueryResult>> promise;
  };

  void WorkerLoop();

  BoundedQueue<Task> queue_;
  std::vector<std::thread> workers_;
};

}  // namespace engine
}  // namespace treeq

#endif  // TREEQ_ENGINE_EXECUTOR_H_
