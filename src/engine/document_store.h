#ifndef TREEQ_ENGINE_DOCUMENT_STORE_H_
#define TREEQ_ENGINE_DOCUMENT_STORE_H_

#include <map>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "tree/document.h"
#include "tree/tree.h"
#include "util/status.h"

/// \file document_store.h
/// The server-side corpus: named, immutable Documents shared read-only by
/// every worker. Add() computes TreeOrders eagerly so no serving thread
/// ever pays (or races on) first-touch order computation; Get() hands out
/// DocumentPtr handles that stay valid after Remove() (removal drops the
/// store's reference, in-flight requests keep theirs).

namespace treeq {
namespace engine {

class DocumentStore {
 public:
  /// Registers `tree` under `name` with precomputed orders. InvalidArgument
  /// if the name is taken (replacing a live document under a running
  /// executor is a recipe for confusion; Remove first to re-register).
  Result<DocumentPtr> Add(std::string_view name, Tree tree);

  /// The document registered under `name`, or NotFound.
  Result<DocumentPtr> Get(std::string_view name) const;

  /// Unregisters `name`. NotFound if absent. Existing handles stay valid.
  Status Remove(std::string_view name);

  /// Registered names in lexicographic order.
  std::vector<std::string> Names() const;

  size_t size() const;

 private:
  mutable std::mutex mu_;
  std::map<std::string, DocumentPtr, std::less<>> docs_;
};

}  // namespace engine
}  // namespace treeq

#endif  // TREEQ_ENGINE_DOCUMENT_STORE_H_
