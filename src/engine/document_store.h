#ifndef TREEQ_ENGINE_DOCUMENT_STORE_H_
#define TREEQ_ENGINE_DOCUMENT_STORE_H_

#include <functional>
#include <map>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "tree/document.h"
#include "tree/tree.h"
#include "util/status.h"

/// \file document_store.h
/// The server-side corpus: named, immutable Documents shared read-only by
/// every worker. Add() computes TreeOrders eagerly so no serving thread
/// ever pays (or races on) first-touch order computation; Get() hands out
/// DocumentPtr handles that stay valid after Remove() (removal drops the
/// store's reference, in-flight requests keep theirs).
///
/// Versioned invalidation: every Document carries a process-unique epoch
/// (tree/document.h). Replace() swaps in a NEW Document — new epoch — so
/// cache entries keyed by the old epoch (cache/eval_cache.h,
/// cache/result_cache.h) become unreachable the instant the swap lands;
/// no reader-side coordination is needed. Eviction listeners fire with the
/// dropped document's epoch on every Remove/Replace so caches can also
/// reclaim those bytes eagerly.

namespace treeq {
namespace engine {

class DocumentStore {
 public:
  /// Called with the epoch of every document handle the store drops
  /// (Remove or Replace), outside the store mutex. Typically wired to
  /// cache::EvalCache::InvalidateDocument and
  /// cache::ResultCache::InvalidateDocument.
  using EvictionListener = std::function<void(uint64_t epoch)>;

  /// Registers `tree` under `name` with precomputed orders. InvalidArgument
  /// if the name is taken (use Replace to swap a live document).
  Result<DocumentPtr> Add(std::string_view name, Tree tree);

  /// Atomically swaps the document registered under `name` for a new
  /// Document built from `tree` (precomputed orders, fresh epoch).
  /// NotFound if absent — replacing nothing is a caller bug worth
  /// surfacing. Existing handles to the old document stay valid; eviction
  /// listeners fire with the old epoch after the swap.
  Result<DocumentPtr> Replace(std::string_view name, Tree tree);

  /// The document registered under `name`, or NotFound.
  Result<DocumentPtr> Get(std::string_view name) const;

  /// Unregisters `name`. NotFound if absent. Existing handles stay valid;
  /// eviction listeners fire with the dropped epoch.
  Status Remove(std::string_view name);

  /// Registers `fn` to observe dropped-document epochs. Listeners are
  /// called after the store mutex is released, in registration order, and
  /// must not call back into the store's mutating methods from the
  /// callback if they want to avoid re-entrancy surprises (Get is fine).
  void AddEvictionListener(EvictionListener fn);

  /// Registered names in lexicographic order.
  std::vector<std::string> Names() const;

  size_t size() const;

 private:
  /// Snapshots the listener list under mu_ and invokes each with `epoch`
  /// after unlocking.
  void NotifyEviction(uint64_t epoch);

  mutable std::mutex mu_;
  std::map<std::string, DocumentPtr, std::less<>> docs_;
  std::vector<EvictionListener> listeners_;
};

}  // namespace engine
}  // namespace treeq

#endif  // TREEQ_ENGINE_DOCUMENT_STORE_H_
