#include "engine/plan_cache.h"

#include <algorithm>

#include "obs/obs.h"

namespace treeq {
namespace engine {

PlanCache::PlanCache(size_t capacity) : capacity_(std::max<size_t>(1, capacity)) {}

Result<PlanPtr> PlanCache::GetOrCompile(Language language,
                                        std::string_view text,
                                        bool* was_hit) {
  return GetOrCompile(language, text, ParseOptions{}, was_hit);
}

Result<PlanPtr> PlanCache::GetOrCompile(Language language,
                                        std::string_view text,
                                        const ParseOptions& options,
                                        bool* was_hit) {
  if (was_hit != nullptr) *was_hit = false;
  if (std::optional<PlanPtr> hit = Lookup(language, text, options)) {
    if (was_hit != nullptr) *was_hit = true;
    return *std::move(hit);
  }
  misses_.fetch_add(1, std::memory_order_relaxed);
  TREEQ_OBS_INC("engine.plan_cache.misses");
  // Compile outside the lock; see file comment for the duplicate-compile
  // trade-off.
  TREEQ_ASSIGN_OR_RETURN(PlanPtr plan,
                         Plan::Compile(language, text, options));
  {
    std::lock_guard<std::mutex> lock(mu_);
    Key key = MakeKey(language, text, options);
    auto it = index_.find(key);
    if (it != index_.end()) {
      // A racing thread inserted first; serve its plan.
      Touch(it);
      return it->second->plan;
    }
    // May alias onto a resident plan with the same canonical hash; serve
    // whichever plan is resident for this text afterwards.
    plan = InsertLocked(std::move(key), plan);
  }
  return plan;
}

std::optional<PlanPtr> PlanCache::Lookup(Language language,
                                         std::string_view text) {
  return Lookup(language, text, ParseOptions{});
}

std::optional<PlanPtr> PlanCache::Lookup(Language language,
                                         std::string_view text,
                                         const ParseOptions& options) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = index_.find(MakeKey(language, text, options));
  if (it == index_.end()) return std::nullopt;
  Touch(it);
  hits_.fetch_add(1, std::memory_order_relaxed);
  TREEQ_OBS_INC("engine.plan_cache.hits");
  return it->second->plan;
}

void PlanCache::Insert(const PlanPtr& plan) {
  if (plan == nullptr) return;
  std::lock_guard<std::mutex> lock(mu_);
  Key key = MakeKey(plan->language(), plan->text(), plan->parse_options());
  auto it = index_.find(key);
  if (it != index_.end()) {
    Touch(it);
    return;
  }
  InsertLocked(std::move(key), plan);
}

void PlanCache::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  lru_.clear();
  index_.clear();
  canon_index_.clear();
}

size_t PlanCache::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return lru_.size();
}

void PlanCache::Touch(
    std::map<Key, std::list<Entry>::iterator>::iterator it) {
  lru_.splice(lru_.begin(), lru_, it->second);
}

PlanPtr PlanCache::InsertLocked(Key key, const PlanPtr& plan) {
  const plan::CanonicalHash hash = plan->canonical_hash();
  const std::pair<uint64_t, uint64_t> canon_key{hash.hi, hash.lo};
  auto canon = canon_index_.find(canon_key);
  if (canon != canon_index_.end()) {
    // Same canonical plan under another text: alias instead of occupying a
    // second slot, so both texts share one entry (and one recency).
    Entry& entry = *canon->second;
    entry.aliases.push_back(key);
    index_[std::move(key)] = canon->second;
    lru_.splice(lru_.begin(), lru_, canon->second);
    canonical_hits_.fetch_add(1, std::memory_order_relaxed);
    TREEQ_OBS_INC("engine.plan_cache.canonical_hits");
    return entry.plan;
  }
  while (lru_.size() >= capacity_) {
    const Entry& victim = lru_.back();
    index_.erase(victim.key);
    for (const Key& alias : victim.aliases) index_.erase(alias);
    auto victim_canon = canon_index_.find({victim.hash.first,
                                           victim.hash.second});
    if (victim_canon != canon_index_.end() &&
        victim_canon->second == std::prev(lru_.end())) {
      canon_index_.erase(victim_canon);
    }
    lru_.pop_back();
    evictions_.fetch_add(1, std::memory_order_relaxed);
    TREEQ_OBS_INC("engine.plan_cache.evictions");
  }
  lru_.push_front(Entry{key, {}, canon_key, plan});
  index_[std::move(key)] = lru_.begin();
  canon_index_[canon_key] = lru_.begin();
  return plan;
}

}  // namespace engine
}  // namespace treeq
