#ifndef TREEQ_ENGINE_MPMC_QUEUE_H_
#define TREEQ_ENGINE_MPMC_QUEUE_H_

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <mutex>
#include <optional>
#include <utility>

/// \file mpmc_queue.h
/// A bounded multi-producer multi-consumer queue (mutex + two condition
/// variables), the hand-off between Executor::Submit and the worker pool.
/// Push blocks while the queue is full; Pop blocks while it is empty.
/// Close() lets producers fail fast and consumers drain: pushes after Close
/// are rejected, pops return the remaining items and then nullopt.

namespace treeq {
namespace engine {

template <typename T>
class BoundedQueue {
 public:
  explicit BoundedQueue(size_t capacity) : capacity_(capacity) {}

  BoundedQueue(const BoundedQueue&) = delete;
  BoundedQueue& operator=(const BoundedQueue&) = delete;

  /// Blocks until there is room (or the queue is closed). Returns false —
  /// with `item` consumed — iff the queue was closed.
  bool Push(T item) {
    std::unique_lock<std::mutex> lock(mu_);
    not_full_.wait(lock,
                   [this] { return closed_ || items_.size() < capacity_; });
    if (closed_) return false;
    items_.push_back(std::move(item));
    lock.unlock();
    not_empty_.notify_one();
    return true;
  }

  /// Non-blocking push for admission control: returns false — with `item`
  /// consumed — when the queue is full or closed, instead of waiting for
  /// room.
  bool TryPush(T item) {
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (closed_ || items_.size() >= capacity_) return false;
      items_.push_back(std::move(item));
    }
    not_empty_.notify_one();
    return true;
  }

  /// Pushes to the FRONT of the queue, bypassing the capacity bound; fails
  /// — with `item` consumed — only when the queue is closed. This is the
  /// fork-join hand-off (engine/task_group.h): child tasks of an
  /// in-flight request jump ahead of queued requests (so helping workers
  /// always find children before new requests) and must never block the
  /// worker that forked them (their count is bounded by the fork degree,
  /// not by client behavior, so the capacity bound is not needed).
  bool TryPushFront(T item) {
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (closed_) return false;
      items_.push_front(std::move(item));
    }
    not_empty_.notify_one();
    return true;
  }

  /// Non-blocking pop of the front item only if `pred(front)` holds;
  /// nullopt when the queue is empty or the front fails the predicate.
  /// With the front-children invariant above, TryPopIf(is_child) returning
  /// nullopt proves no child tasks are queued at all.
  template <typename Pred>
  std::optional<T> TryPopIf(Pred&& pred) {
    std::unique_lock<std::mutex> lock(mu_);
    if (items_.empty() || !pred(items_.front())) return std::nullopt;
    T item = std::move(items_.front());
    items_.pop_front();
    lock.unlock();
    not_full_.notify_one();
    return item;
  }

  /// Blocks until an item is available. Returns nullopt once the queue is
  /// closed and fully drained.
  std::optional<T> Pop() {
    std::unique_lock<std::mutex> lock(mu_);
    not_empty_.wait(lock, [this] { return closed_ || !items_.empty(); });
    if (items_.empty()) return std::nullopt;  // closed and drained
    T item = std::move(items_.front());
    items_.pop_front();
    lock.unlock();
    not_full_.notify_one();
    return item;
  }

  /// Non-blocking pop; nullopt when empty (whether or not closed).
  std::optional<T> TryPop() {
    std::unique_lock<std::mutex> lock(mu_);
    if (items_.empty()) return std::nullopt;
    T item = std::move(items_.front());
    items_.pop_front();
    lock.unlock();
    not_full_.notify_one();
    return item;
  }

  void Close() {
    {
      std::lock_guard<std::mutex> lock(mu_);
      closed_ = true;
    }
    not_full_.notify_all();
    not_empty_.notify_all();
  }

  size_t size() const {
    std::lock_guard<std::mutex> lock(mu_);
    return items_.size();
  }

  size_t capacity() const { return capacity_; }

 private:
  const size_t capacity_;
  mutable std::mutex mu_;
  std::condition_variable not_full_;
  std::condition_variable not_empty_;
  std::deque<T> items_;
  bool closed_ = false;
};

}  // namespace engine
}  // namespace treeq

#endif  // TREEQ_ENGINE_MPMC_QUEUE_H_
