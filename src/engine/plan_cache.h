#ifndef TREEQ_ENGINE_PLAN_CACHE_H_
#define TREEQ_ENGINE_PLAN_CACHE_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <list>
#include <map>
#include <mutex>
#include <optional>
#include <string>
#include <string_view>
#include <utility>

#include "engine/plan.h"
#include "query/parse.h"
#include "util/status.h"

/// \file plan_cache.h
/// An LRU cache of compiled plans keyed by (language, query text) — the
/// run-many half of the server's parse-once/run-many contract. A repeated
/// query costs one mutex-guarded map lookup instead of a parse + validate +
/// classify pass; the bench (bench_engine_throughput) measures the gap.
///
/// Thread-safety: all methods are safe to call concurrently. On a miss,
/// GetOrCompile compiles OUTSIDE the cache lock, so a slow compile never
/// stalls hits on other keys; two threads racing on the same cold key may
/// both compile, and the first insert wins (plans are immutable, so either
/// copy is equally good).
///
/// Obs counters: engine.plan_cache.hits / .misses / .evictions, plus
/// engine.plan.compiles incremented by Plan::Compile itself — a cache hit
/// leaves engine.plan.compiles untouched, which is how the bench proves
/// hits skip compilation.

namespace treeq {
namespace engine {

class PlanCache {
 public:
  /// `capacity` = max resident plans; at least 1.
  explicit PlanCache(size_t capacity);

  /// Returns the cached plan for (language, text), compiling and inserting
  /// it on a miss. Compile failures are returned and not cached (a
  /// mistyped query should not poison the cache). `was_hit`, if non-null,
  /// reports whether this call was served from the cache — callers forward
  /// it to SubmitOptions::plan_cache_hit so per-query profiles attribute
  /// compile time to cold requests only.
  Result<PlanPtr> GetOrCompile(Language language, std::string_view text,
                               bool* was_hit = nullptr);

  /// Lookup without compiling; refreshes recency on a hit.
  std::optional<PlanPtr> Lookup(Language language, std::string_view text);

  /// Inserts an externally compiled plan (evicting LRU entries as needed).
  void Insert(const PlanPtr& plan);

  void Clear();

  size_t size() const;
  size_t capacity() const { return capacity_; }

  /// Lifetime tallies, independent of the obs registry (and of
  /// TREEQ_OBS_DISABLED builds).
  uint64_t hits() const { return hits_.load(std::memory_order_relaxed); }
  uint64_t misses() const { return misses_.load(std::memory_order_relaxed); }
  uint64_t evictions() const {
    return evictions_.load(std::memory_order_relaxed);
  }

 private:
  using Key = std::pair<Language, std::string>;
  struct Entry {
    Key key;
    PlanPtr plan;
  };

  /// Moves `it`'s entry to the front of the recency list. Caller holds mu_.
  void Touch(std::map<Key, std::list<Entry>::iterator>::iterator it);
  /// Inserts under mu_ unless the key is already present.
  void InsertLocked(Key key, const PlanPtr& plan);

  const size_t capacity_;
  mutable std::mutex mu_;
  std::list<Entry> lru_;  // front = most recently used
  std::map<Key, std::list<Entry>::iterator> index_;
  std::atomic<uint64_t> hits_{0};
  std::atomic<uint64_t> misses_{0};
  std::atomic<uint64_t> evictions_{0};
};

}  // namespace engine
}  // namespace treeq

#endif  // TREEQ_ENGINE_PLAN_CACHE_H_
