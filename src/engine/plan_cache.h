#ifndef TREEQ_ENGINE_PLAN_CACHE_H_
#define TREEQ_ENGINE_PLAN_CACHE_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <list>
#include <map>
#include <mutex>
#include <optional>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "engine/plan.h"
#include "query/parse.h"
#include "util/status.h"

/// \file plan_cache.h
/// An LRU cache of compiled plans keyed by (language, parse dialect
/// options, query text) — the run-many half of the server's
/// parse-once/run-many contract. A repeated query costs one mutex-guarded
/// map lookup instead of a parse + validate + classify pass; the bench
/// (bench_engine_throughput) measures the gap. The dialect options
/// (ParseOptions: max_nesting, xpath_paper_axes) are part of the key
/// because the same text can parse to different queries under different
/// options — "/Child+::a" is a paper-axis step in one dialect and a parse
/// error in the other.
///
/// Thread-safety: all methods are safe to call concurrently. On a miss,
/// GetOrCompile compiles OUTSIDE the cache lock, so a slow compile never
/// stalls hits on other keys; two threads racing on the same cold key may
/// both compile, and the first insert wins (plans are immutable, so either
/// copy is equally good).
///
/// Canonical aliasing: alongside the text index the cache keeps a second
/// index on the plan's canonical 128-bit hash (plan/canonicalize.h). When
/// a compile lands on a hash that is already resident — the same query in
/// another dialect, whitespace, or variable naming, possibly another
/// language — the new text becomes an *alias* of the resident entry: one
/// list node, one PlanPtr, every alias text a map key pointing at it.
/// Counted by canonical_hits(); future submits of either text are plain
/// hits. Aliased texts therefore share one PlanCache entry, and (because
/// ResultKey is the canonical hash too) one cached result and one
/// singleflight.
///
/// Obs counters: engine.plan_cache.hits / .misses / .evictions /
/// .canonical_hits, plus engine.plan.compiles incremented by
/// Plan::Compile itself — a cache hit leaves engine.plan.compiles
/// untouched, which is how the bench proves hits skip compilation.

namespace treeq {
namespace engine {

class PlanCache {
 public:
  /// `capacity` = max resident plans; at least 1.
  explicit PlanCache(size_t capacity);

  /// Returns the cached plan for (language, options, text), compiling and
  /// inserting it on a miss. Compile failures are returned and not cached
  /// (a mistyped query should not poison the cache). `was_hit`, if
  /// non-null, reports whether this call was served from the cache —
  /// callers forward it to SubmitOptions::plan_cache_hit so per-query
  /// profiles attribute compile time to cold requests only. The two-
  /// argument form keys under default ParseOptions.
  Result<PlanPtr> GetOrCompile(Language language, std::string_view text,
                               bool* was_hit = nullptr);
  Result<PlanPtr> GetOrCompile(Language language, std::string_view text,
                               const ParseOptions& options,
                               bool* was_hit = nullptr);

  /// Lookup without compiling; refreshes recency on a hit.
  std::optional<PlanPtr> Lookup(Language language, std::string_view text);
  std::optional<PlanPtr> Lookup(Language language, std::string_view text,
                                const ParseOptions& options);

  /// Inserts an externally compiled plan (evicting LRU entries as needed).
  void Insert(const PlanPtr& plan);

  void Clear();

  size_t size() const;
  size_t capacity() const { return capacity_; }

  /// Lifetime tallies, independent of the obs registry (and of
  /// TREEQ_OBS_DISABLED builds).
  uint64_t hits() const { return hits_.load(std::memory_order_relaxed); }
  uint64_t misses() const { return misses_.load(std::memory_order_relaxed); }
  uint64_t evictions() const {
    return evictions_.load(std::memory_order_relaxed);
  }
  /// Compiles whose canonical hash matched a resident plan of a different
  /// text: the new text was aliased onto the resident entry instead of
  /// occupying a slot of its own.
  uint64_t canonical_hits() const {
    return canonical_hits_.load(std::memory_order_relaxed);
  }

 private:
  /// The plan's full identity: what it parses as depends on all four
  /// fields. Ordered (for the std::map index) by cheap fields first, text
  /// last.
  struct Key {
    Language language = Language::kXPath;
    int max_nesting = 0;
    bool xpath_paper_axes = true;
    std::string text;

    bool operator<(const Key& other) const {
      if (language != other.language) return language < other.language;
      if (max_nesting != other.max_nesting) {
        return max_nesting < other.max_nesting;
      }
      if (xpath_paper_axes != other.xpath_paper_axes) {
        return xpath_paper_axes < other.xpath_paper_axes;
      }
      return text < other.text;
    }
  };
  struct Entry {
    Key key;                   // the text that first compiled the plan
    std::vector<Key> aliases;  // other texts sharing this canonical plan
    std::pair<uint64_t, uint64_t> hash;  // the plan's canonical hash
    PlanPtr plan;
  };

  static Key MakeKey(Language language, std::string_view text,
                     const ParseOptions& options) {
    Key key;
    key.language = language;
    key.max_nesting = options.max_nesting;
    key.xpath_paper_axes = options.xpath_paper_axes;
    key.text = std::string(text);
    return key;
  }

  /// Moves `it`'s entry to the front of the recency list. Caller holds mu_.
  void Touch(std::map<Key, std::list<Entry>::iterator>::iterator it);
  /// Inserts under mu_ unless the key is already present; aliases onto a
  /// resident entry when the canonical hash matches. Returns the plan that
  /// is resident for `key` afterwards (the alias target on a canonical
  /// hit, else `plan`).
  PlanPtr InsertLocked(Key key, const PlanPtr& plan);

  const size_t capacity_;
  mutable std::mutex mu_;
  std::list<Entry> lru_;  // front = most recently used
  std::map<Key, std::list<Entry>::iterator> index_;
  /// (hash.hi, hash.lo) -> resident entry with that canonical hash.
  std::map<std::pair<uint64_t, uint64_t>, std::list<Entry>::iterator>
      canon_index_;
  std::atomic<uint64_t> hits_{0};
  std::atomic<uint64_t> misses_{0};
  std::atomic<uint64_t> evictions_{0};
  std::atomic<uint64_t> canonical_hits_{0};
};

}  // namespace engine
}  // namespace treeq

#endif  // TREEQ_ENGINE_PLAN_CACHE_H_
