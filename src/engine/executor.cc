#include "engine/executor.h"

#include <algorithm>
#include <chrono>
#include <condition_variable>
#include <memory>
#include <mutex>
#include <unordered_set>
#include <utility>

#include "fault/fault.h"
#include "obs/obs.h"
#include "obs/stats.h"
#ifndef TREEQ_OBS_DISABLED
#include "obs/flight_recorder.h"
#include "obs/profile.h"
#endif

namespace treeq {
namespace engine {

namespace {

/// One macro site per language — TREEQ_OBS_INC caches its counter pointer
/// in a function-local static, so it must see a distinct literal per name.
void CountRequestLanguage(Language language) {
  switch (language) {
    case Language::kXPath:
      TREEQ_OBS_INC("engine.exec.xpath_requests");
      break;
    case Language::kCq:
      TREEQ_OBS_INC("engine.exec.cq_requests");
      break;
    case Language::kDatalog:
      TREEQ_OBS_INC("engine.exec.datalog_requests");
      break;
    case Language::kFo:
      TREEQ_OBS_INC("engine.exec.fo_requests");
      break;
  }
}

Result<QueryResult> RunOne(const PlanPtr& plan, const DocumentPtr& doc,
                           const ExecContextPtr& context,
                           bool allow_degraded, int parallelism,
                           par::TaskRunner* runner,
                           cache::EvalCache* eval_cache) {
  if (plan == nullptr) {
    return Status::InvalidArgument("null plan submitted");
  }
  if (doc == nullptr) {
    return Status::InvalidArgument("null document submitted");
  }
  // Injected evaluation failure: surfaces through the same path as any
  // evaluator error — cache insert skipped, profile recorded, flight
  // completed, promise fulfilled.
  TREEQ_FAULT_POINT("engine.worker.run");
  CountRequestLanguage(plan->language());
  ExecuteOptions options;
  options.allow_degraded = allow_degraded;
  if (parallelism >= 2) {
    options.parallelism = parallelism;
    options.runner = runner;
  }
  // Bind the cross-query memo to this document's epoch for the duration of
  // the evaluation; the memo object itself is stateless and cheap.
  std::optional<cache::EvalCache::Memo> memo;
  if (eval_cache != nullptr) {
    memo.emplace(eval_cache, doc->epoch());
    options.axis_memo = &*memo;
  }
  const ExecContext& exec =
      context != nullptr ? *context : ExecContext::Unbounded();
  return plan->Execute(*doc, exec, options);
}

/// A request qualifies for result-cache service and singleflight collapse
/// only when nothing about it is per-request: no deadline, no budgets, no
/// bypass. Bounded requests must pay (and be limited by) their own
/// execution.
bool CacheEligible(const SubmitOptions& options) {
  return !options.bypass_cache &&
         options.timeout == std::chrono::nanoseconds::zero() &&
         options.visit_budget == UINT64_MAX &&
         options.memory_budget == UINT64_MAX;
}

cache::ResultKey MakeResultKey(const Plan& plan, uint64_t doc_epoch) {
  // The canonical hash folds in language, dialect options, and structure:
  // semantically identical queries across dialects share one key, one
  // cached result, and one singleflight.
  cache::ResultKey key;
  key.doc_epoch = doc_epoch;
  key.query_hash_hi = plan.canonical_hash().hi;
  key.query_hash_lo = plan.canonical_hash().lo;
  return key;
}

}  // namespace

Executor::Executor() : Executor(Options()) {}

Executor::Executor(const Options& options)
    : queue_(std::max<size_t>(1, options.queue_capacity)),
      eval_cache_(options.eval_cache),
      result_cache_(options.result_cache),
      singleflight_(options.singleflight) {
  int n = options.num_workers;
  if (n <= 0) {
    n = static_cast<int>(std::thread::hardware_concurrency());
    if (n <= 0) n = 1;
  }
  workers_.reserve(static_cast<size_t>(n));
  for (int i = 0; i < n; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

Executor::~Executor() { Shutdown(); }

void Executor::Shutdown() {
  // A fault point in a void seam: firing is observable (counters, storm
  // assertions) but has nothing to fail — shutdown must always complete.
  // Also proves post-shutdown injection can never abort the process.
  (void)TREEQ_FAULT_INJECT("engine.shutdown");
  // Mark first so racing Submits fail fast without touching the queue,
  // then close so blocked pushes bounce and workers drain + exit.
  shutdown_.store(true, std::memory_order_release);
  queue_.Close();
  std::lock_guard<std::mutex> lock(join_mu_);
  for (std::thread& w : workers_) {
    if (w.joinable()) w.join();
  }
  // Workers drained the queue before exiting; any task still queued at
  // Close() has had its promise fulfilled.
}

par::TaskRunner& Executor::task_runner() { return group_runner_; }

Submission Executor::Submit(QueryRequest request) {
  return SubmitWithCollapse(std::move(request), singleflight_);
}

Submission Executor::SubmitWithCollapse(QueryRequest request, bool collapse) {
  const SubmitOptions& options = request.options;
  Task task;
  task.plan = std::move(request.plan);
  task.document = std::move(request.document);
  task.allow_degraded = options.allow_degraded;
  task.parallelism = options.parallelism;
  task.bypass_cache = options.bypass_cache;
  task.cache_hit = options.plan_cache_hit;
  ExecContext::Limits limits;
  if (options.timeout > std::chrono::nanoseconds::zero()) {
    limits.deadline = ExecContext::Clock::now() + options.timeout;
  }
  limits.visit_budget = options.visit_budget;
  limits.memory_budget = options.memory_budget;
  task.context = std::make_shared<ExecContext>(limits);

  const bool reusable = task.plan != nullptr && task.document != nullptr &&
                        (result_cache_ != nullptr || collapse) &&
                        CacheEligible(options);
  if (reusable) {
    cache::ResultKey key =
        MakeResultKey(*task.plan, task.document->epoch());
    if (result_cache_ != nullptr) {
      if (std::optional<QueryResult> hit = result_cache_->Lookup(key)) {
        // Served on the submitting thread: no queue, no worker. Charge the
        // lookup (one unit) — the saved execution was not paid for.
        (void)task.context->Charge(1);
#ifndef TREEQ_OBS_DISABLED
        if (obs::FlightRecorder::Global().enabled()) {
          const Plan& plan = *task.plan;
          obs::QueryProfile profile;
          profile.id = obs::NextQueryId();
          profile.language = LanguageName(plan.language());
          profile.query_hash = obs::HashQueryText(plan.text());
          profile.query = plan.text().substr(0, obs::kMaxQueryChars);
          profile.document = task.document->name();
          profile.engine = "cache.result";
          profile.explain = plan.Explain();
          profile.canonical_hash = plan.canonical_hash().ToHex();
          profile.cache_hit = task.cache_hit;
          profile.result_cache_hit = true;
          profile.visits = 1;
          profile.estimated_visits =
              plan.EstimatedVisits(*task.document);
          TREEQ_OBS_FLIGHT_RECORD(std::move(profile));
        }
#endif
        Submission submission;
        submission.context = task.context;
        std::promise<Result<QueryResult>> ready;
        submission.future = ready.get_future();
        ready.set_value(*std::move(hit));
        return submission;
      }
    }
    // Injected singleflight bypass: the request neither joins nor leads —
    // it executes standalone (correct, just uncollapsed), and never owes
    // the in-flight table a Complete.
    if (collapse && TREEQ_FAULT_FIRED("cache.flight.join")) collapse = false;
    if (collapse) {
      if (std::optional<std::future<Result<QueryResult>>> follower =
              inflight_.Join(key)) {
        // Collapsed into the in-flight leader's execution; this request's
        // context is returned but unused (Cancel() on a follower does not
        // cancel the shared leader).
        Submission submission;
        submission.context = task.context;
        submission.future = *std::move(follower);
        return submission;
      }
      task.flight_leader = true;
    }
    task.result_key = std::move(key);
  }
  return SubmitTask(std::move(task), options.reject_when_full);
}

Submission Executor::SubmitTask(Task task, bool reject_when_full) {
  Submission submission;
  submission.context = task.context;
  submission.future = task.promise.get_future();
#ifndef TREEQ_OBS_DISABLED
  // Stamp the queue-wait start and the process-unique query id here, on
  // the submitting thread, so the worker can attribute the wait and the
  // flight recorder has a stable id even for rejected requests' siblings.
  task.enqueue_ns = static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
  task.profile_id = obs::NextQueryId();
#endif
  TREEQ_OBS_INC("engine.exec.submitted");
  // If this task is a singleflight leader, its key must survive the move
  // below: a rejected leader still owes the in-flight table a Complete, or
  // collapsed followers would wait forever.
  std::optional<cache::ResultKey> flight_key;
  if (task.flight_leader) flight_key = task.result_key;
#ifndef TREEQ_OBS_DISABLED
  // Snapshot what a rejection profile needs before the task is consumed
  // by the queue move below (shared_ptr copies; recorder-gated).
  PlanPtr profile_plan;
  DocumentPtr profile_doc;
  if (obs::FlightRecorder::Global().enabled()) {
    profile_plan = task.plan;
    profile_doc = task.document;
  }
  const uint64_t profile_id = task.profile_id;
  const bool profile_cache_hit = task.cache_hit;
#endif
  WorkItem item;
  item.request.emplace(std::move(task));
  bool accepted;
  if (shutdown_.load(std::memory_order_acquire)) {
    accepted = false;
  } else if (TREEQ_FAULT_FIRED("engine.queue.push")) {
    // Injected submit-side saturation: indistinguishable from a genuinely
    // full queue — same rejection counter, same Unavailable contract.
    accepted = false;
  } else if (reject_when_full) {
    accepted = queue_.TryPush(std::move(item));
  } else {
    accepted = queue_.Push(std::move(item));
  }
  if (!accepted) {
    // The task (with the promise) was consumed either way; rebuild a
    // pre-failed future. Shutdown wins over "queue full" for the message —
    // a TryPush can lose to either.
    const bool down = shutdown_.load(std::memory_order_acquire);
    if (!down) TREEQ_OBS_INC("engine.rejected");
    Status status = Status::Unavailable(
        down ? "executor is shut down" : "executor queue is full");
    if (flight_key.has_value()) {
      inflight_.Complete(*flight_key, status);
    }
#ifndef TREEQ_OBS_DISABLED
    // Rejected requests get a profile too (engine "rejected", zero
    // execute time): a saturated queue is exactly when the flight
    // recorder is most useful.
    if (profile_plan != nullptr && profile_doc != nullptr &&
        obs::FlightRecorder::Global().enabled()) {
      obs::QueryProfile profile;
      profile.id = profile_id;
      profile.language = LanguageName(profile_plan->language());
      profile.query_hash = obs::HashQueryText(profile_plan->text());
      profile.query = profile_plan->text().substr(0, obs::kMaxQueryChars);
      profile.document = profile_doc->name();
      profile.engine = "rejected";
      profile.explain = profile_plan->Explain();
      profile.canonical_hash = profile_plan->canonical_hash().ToHex();
      profile.cache_hit = profile_cache_hit;
      profile.ok = false;
      profile.status = StatusCodeName(status.code());
      TREEQ_OBS_FLIGHT_RECORD(std::move(profile));
    }
#endif
    std::promise<Result<QueryResult>> failed;
    submission.future = failed.get_future();
    failed.set_value(std::move(status));
  }
  return submission;
}

std::vector<Submission> Executor::SubmitBatch(
    std::span<QueryRequest> requests) {
  // Warm each distinct document once on the submitting thread, so N
  // requests against the same document race on nothing: the label index is
  // built (or found already built) exactly here. With an eval cache
  // attached, the first executed request then populates axis images the
  // rest of the group reuses.
  std::unordered_set<const Document*> warmed;
  for (const QueryRequest& request : requests) {
    if (request.document == nullptr) continue;
    if (warmed.insert(request.document.get()).second) {
      (void)request.document->label_index();
    }
  }
  // Collapse identical eligible requests within the batch regardless of
  // the executor-wide singleflight flag: the first of each key leads, the
  // rest follow its outcome.
  std::vector<Submission> submissions;
  submissions.reserve(requests.size());
  for (QueryRequest& request : requests) {
    submissions.push_back(
        SubmitWithCollapse(std::move(request), /*collapse=*/true));
  }
  return submissions;
}

std::vector<Result<QueryResult>> Executor::RunBatch(
    std::vector<Request> requests) {
  std::vector<std::future<Result<QueryResult>>> futures;
  futures.reserve(requests.size());
  for (Request& r : requests) {
    QueryRequest request;
    request.plan = std::move(r.plan);
    request.document = std::move(r.document);
    futures.push_back(Submit(std::move(request)).future);
  }
  std::vector<Result<QueryResult>> results;
  results.reserve(futures.size());
  for (auto& f : futures) results.push_back(f.get());
  return results;
}

void Executor::WorkerLoop() {
  // Fault rules with thread_tag="worker" fire only on pool threads.
  TREEQ_FAULT_THREAD_TAG("worker");
  // All counter increments below (and inside the evaluators) buffer into
  // this worker's shadow and merge at request boundaries; see executor.h.
  obs::ShadowCounters shadow;
#ifndef TREEQ_OBS_DISABLED
  // The two evaluator counters a profile attributes per request. GetCounter
  // registers on first use and returns a stable pointer, so hoisting the
  // lookups out of the loop leaves the per-request snapshot as two probes
  // of the shadow's thread-private map.
  obs::Counter* const words_scanned =
      obs::StatsRegistry::Global().GetCounter("axes.words_scanned");
  obs::Counter* const label_hits =
      obs::StatsRegistry::Global().GetCounter("labelindex.hits");
  obs::Counter* const eval_hits =
      obs::StatsRegistry::Global().GetCounter("cache.eval.hits");
#endif
  while (std::optional<WorkItem> item = queue_.Pop()) {
    if (item->is_child()) {
      // A forked child task of another request's fork-join group
      // (RunChildren). The child flushes the shadow itself before
      // signaling its group, so the forking request's "future ready
      // implies stats visible" contract holds even when children run on
      // foreign workers.
      item->child();
      continue;
    }
    std::optional<Task>& task = item->request;
    auto start = std::chrono::steady_clock::now();
#ifndef TREEQ_OBS_DISABLED
    // The shadow was flushed at the previous request boundary, but snapshot
    // the buffered deltas anyway so the attribution stays correct even if
    // a future change leaves residue in the buffer.
    const bool profiling = obs::FlightRecorder::Global().enabled() &&
                           task->plan != nullptr &&
                           task->document != nullptr;
    const uint64_t words_before =
        profiling ? shadow.BufferedDelta(words_scanned) : 0;
    const uint64_t labels_before =
        profiling ? shadow.BufferedDelta(label_hits) : 0;
    const uint64_t eval_hits_before =
        profiling ? shadow.BufferedDelta(eval_hits) : 0;
    uint64_t queue_wait_ns = 0;
    if (task->enqueue_ns != 0) {
      const uint64_t dequeue_ns = static_cast<uint64_t>(
          std::chrono::duration_cast<std::chrono::nanoseconds>(
              start.time_since_epoch())
              .count());
      queue_wait_ns =
          dequeue_ns > task->enqueue_ns ? dequeue_ns - task->enqueue_ns : 0;
      TREEQ_OBS_HISTOGRAM("engine.queue_wait_ns", queue_wait_ns);
    }
#endif
    // Injected worker hand-off failure: the popped task never evaluates
    // and fails with the injected status, but every obligation below —
    // profile, shadow flush, flight completion, promise — still runs.
    Result<QueryResult> result = [&]() -> Result<QueryResult> {
      if (Status injected = TREEQ_FAULT_INJECT("engine.queue.pop");
          !injected.ok()) {
        return injected;
      }
      return RunOne(task->plan, task->document, task->context,
                    task->allow_degraded, task->parallelism, &group_runner_,
                    task->bypass_cache ? nullptr : eval_cache_);
    }();
    // Publish a reusable outcome before anyone can observe the future: ok
    // and non-degraded only, so a cache hit is bit-identical to the
    // uncached evaluation it replays.
    if (task->result_key.has_value() && result_cache_ != nullptr &&
        result.ok() && !result.value().degraded) {
      result_cache_->Insert(*task->result_key, result.value());
    }
    auto elapsed_ns = static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now() - start)
            .count());
    TREEQ_OBS_INC("engine.exec.requests");
    if (!result.ok()) TREEQ_OBS_INC("engine.exec.errors");
    TREEQ_OBS_HISTOGRAM("engine.exec.request_ns", elapsed_ns);
    TREEQ_OBS_HISTOGRAM("engine.execute_ns", elapsed_ns);
    if (task->context != nullptr) {
      TREEQ_OBS_COUNT("exec.visits", task->context->visits_used());
    }
#ifndef TREEQ_OBS_DISABLED
    if (profiling) {
      const Plan& plan = *task->plan;
      obs::QueryProfile profile;
      profile.id = task->profile_id;
      profile.language = LanguageName(plan.language());
      profile.query_hash = obs::HashQueryText(plan.text());
      profile.query = plan.text().substr(0, obs::kMaxQueryChars);
      profile.document = task->document->name();
      profile.engine =
          result.ok() ? result.value().engine : plan.route_name();
      profile.explain = plan.Explain();
      if (result.ok()) profile.route_rationale = result.value().route_rationale;
      profile.canonical_hash = plan.canonical_hash().ToHex();
      profile.cache_hit = task->cache_hit;
      profile.degraded = result.ok() && result.value().degraded;
      if (result.ok()) {
        profile.partitions = result.value().partitions;
        profile.parallel_ns = result.value().parallel_ns;
        profile.merge_ns = result.value().merge_ns;
      }
      profile.ok = result.ok();
      profile.status = StatusCodeName(result.status().code());
      profile.queue_wait_ns = queue_wait_ns;
      // A cache hit reused a plan some earlier request paid to compile.
      profile.compile_ns = task->cache_hit ? 0 : plan.compile_ns();
      profile.execute_ns = elapsed_ns;
      profile.visits =
          task->context != nullptr ? task->context->visits_used() : 0;
      profile.words_scanned =
          shadow.BufferedDelta(words_scanned) - words_before;
      profile.label_index_hits =
          shadow.BufferedDelta(label_hits) - labels_before;
      profile.eval_cache_hits =
          shadow.BufferedDelta(eval_hits) - eval_hits_before;
      profile.estimated_visits = plan.EstimatedVisits(*task->document);
      // Record before the flush + set_value below: once the caller sees
      // the future ready, the profile is visible in the recorder.
      TREEQ_OBS_FLIGHT_RECORD(std::move(profile));
    }
#endif
    // Merge this request's counter deltas before the caller can observe
    // the future: "future ready" implies "stats visible". The flight fans
    // out after the flush for the same reason — a follower's future ready
    // implies the leader's stats are visible too.
    shadow.Flush();
    if (task->flight_leader) {
      inflight_.Complete(*task->result_key, result);
    }
    task->promise.set_value(std::move(result));
  }
}

void Executor::RunChildren(std::vector<std::function<void()>> tasks) {
  if (tasks.empty()) return;
  struct Group {
    std::mutex mu;
    std::condition_variable cv;
    size_t pending = 0;
  };
  auto group = std::make_shared<Group>();
  group->pending = tasks.size();
  auto wrap = [&group](std::function<void()> task) {
    return [group, task = std::move(task)] {
      task();
      // Make the child's buffered counter deltas globally visible before
      // the forking request can observe completion, so the request-level
      // "future ready implies stats visible" contract survives children
      // running on foreign workers.
      if (obs::ShadowCounters* shadow = obs::ShadowCounters::Current()) {
        shadow->Flush();
      }
      std::lock_guard<std::mutex> lock(group->mu);
      if (--group->pending == 0) group->cv.notify_all();
    };
  };
  // Queue all but the first child AHEAD of pending requests (children are
  // bounded by the fork degree, so jumping the capacity bound is safe) and
  // run the first on this thread. A front-push only fails when the queue
  // closed mid-shutdown; then the child runs inline — completion never
  // depends on the pool.
  std::function<void()> first = wrap(std::move(tasks[0]));
  for (size_t i = 1; i < tasks.size(); ++i) {
    std::function<void()> child = wrap(std::move(tasks[i]));
    WorkItem item;
    item.child = child;
    // An injected scheduling failure exercises the same fallback as a
    // closed queue: the child runs inline on the forking thread, so
    // fork-join completion never depends on the pool.
    if (TREEQ_FAULT_FIRED("engine.child.push") ||
        !queue_.TryPushFront(std::move(item))) {
      child();
    }
  }
  first();
  // Help-run queued children — ours or another group's, both keep the
  // system draining — until this group completes. The front-children
  // invariant makes the blocking step safe: TryPopIf failing means no
  // child tasks are queued anywhere, so every child of this group is
  // already running on some worker, and that worker will signal the cv.
  for (;;) {
    {
      std::lock_guard<std::mutex> lock(group->mu);
      if (group->pending == 0) return;
    }
    std::optional<WorkItem> item =
        queue_.TryPopIf([](const WorkItem& w) { return w.is_child(); });
    if (item.has_value()) {
      item->child();
      continue;
    }
    std::unique_lock<std::mutex> lock(group->mu);
    group->cv.wait(lock, [&group] { return group->pending == 0; });
    return;
  }
}

}  // namespace engine
}  // namespace treeq
