#include "engine/executor.h"

#include <algorithm>
#include <chrono>
#include <condition_variable>
#include <memory>
#include <mutex>
#include <utility>

#include "obs/obs.h"
#include "obs/stats.h"
#ifndef TREEQ_OBS_DISABLED
#include "obs/flight_recorder.h"
#include "obs/profile.h"
#endif

namespace treeq {
namespace engine {

namespace {

/// One macro site per language — TREEQ_OBS_INC caches its counter pointer
/// in a function-local static, so it must see a distinct literal per name.
void CountRequestLanguage(Language language) {
  switch (language) {
    case Language::kXPath:
      TREEQ_OBS_INC("engine.exec.xpath_requests");
      break;
    case Language::kCq:
      TREEQ_OBS_INC("engine.exec.cq_requests");
      break;
    case Language::kDatalog:
      TREEQ_OBS_INC("engine.exec.datalog_requests");
      break;
    case Language::kFo:
      TREEQ_OBS_INC("engine.exec.fo_requests");
      break;
  }
}

Result<QueryResult> RunOne(const PlanPtr& plan, const DocumentPtr& doc,
                           const ExecContextPtr& context,
                           bool allow_degraded, int parallelism,
                           par::TaskRunner* runner) {
  if (plan == nullptr) {
    return Status::InvalidArgument("null plan submitted");
  }
  if (doc == nullptr) {
    return Status::InvalidArgument("null document submitted");
  }
  CountRequestLanguage(plan->language());
  ExecuteOptions options;
  options.allow_degraded = allow_degraded;
  if (parallelism >= 2) {
    options.parallelism = parallelism;
    options.runner = runner;
  }
  const ExecContext& exec =
      context != nullptr ? *context : ExecContext::Unbounded();
  return plan->Execute(*doc, exec, options);
}

}  // namespace

Executor::Executor() : Executor(Options()) {}

Executor::Executor(const Options& options)
    : queue_(std::max<size_t>(1, options.queue_capacity)) {
  int n = options.num_workers;
  if (n <= 0) {
    n = static_cast<int>(std::thread::hardware_concurrency());
    if (n <= 0) n = 1;
  }
  workers_.reserve(static_cast<size_t>(n));
  for (int i = 0; i < n; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

Executor::~Executor() { Shutdown(); }

void Executor::Shutdown() {
  // Mark first so racing Submits fail fast without touching the queue,
  // then close so blocked pushes bounce and workers drain + exit.
  shutdown_.store(true, std::memory_order_release);
  queue_.Close();
  std::lock_guard<std::mutex> lock(join_mu_);
  for (std::thread& w : workers_) {
    if (w.joinable()) w.join();
  }
  // Workers drained the queue before exiting; any task still queued at
  // Close() has had its promise fulfilled.
}

par::TaskRunner& Executor::task_runner() { return group_runner_; }

Submission Executor::Submit(QueryRequest request) {
  const SubmitOptions& options = request.options;
  Task task;
  task.plan = std::move(request.plan);
  task.document = std::move(request.document);
  task.allow_degraded = options.allow_degraded;
  task.parallelism = options.parallelism;
  task.cache_hit = options.plan_cache_hit;
  ExecContext::Limits limits;
  if (options.timeout > std::chrono::nanoseconds::zero()) {
    limits.deadline = ExecContext::Clock::now() + options.timeout;
  }
  limits.visit_budget = options.visit_budget;
  limits.memory_budget = options.memory_budget;
  task.context = std::make_shared<ExecContext>(limits);
  return SubmitTask(std::move(task), options.reject_when_full);
}

std::future<Result<QueryResult>> Executor::Submit(PlanPtr plan,
                                                  DocumentPtr document) {
  // Unbounded fast path kept distinct from Submit(QueryRequest): no
  // ExecContext is allocated, matching the historic behavior exactly.
  Task task;
  task.plan = std::move(plan);
  task.document = std::move(document);
  return SubmitTask(std::move(task), /*reject_when_full=*/false).future;
}

Submission Executor::Submit(PlanPtr plan, DocumentPtr document,
                            const SubmitOptions& options) {
  QueryRequest request;
  request.plan = std::move(plan);
  request.document = std::move(document);
  request.options = options;
  return Submit(std::move(request));
}

Submission Executor::SubmitTask(Task task, bool reject_when_full) {
  Submission submission;
  submission.context = task.context;
  submission.future = task.promise.get_future();
#ifndef TREEQ_OBS_DISABLED
  // Stamp the queue-wait start and the process-unique query id here, on
  // the submitting thread, so the worker can attribute the wait and the
  // flight recorder has a stable id even for rejected requests' siblings.
  task.enqueue_ns = static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
  task.profile_id = obs::NextQueryId();
#endif
  TREEQ_OBS_INC("engine.exec.submitted");
  WorkItem item;
  item.request.emplace(std::move(task));
  bool accepted;
  if (shutdown_.load(std::memory_order_acquire)) {
    accepted = false;
  } else if (reject_when_full) {
    accepted = queue_.TryPush(std::move(item));
  } else {
    accepted = queue_.Push(std::move(item));
  }
  if (!accepted) {
    // The task (with the promise) was consumed either way; rebuild a
    // pre-failed future. Shutdown wins over "queue full" for the message —
    // a TryPush can lose to either.
    const bool down = shutdown_.load(std::memory_order_acquire);
    if (!down) TREEQ_OBS_INC("engine.rejected");
    std::promise<Result<QueryResult>> failed;
    submission.future = failed.get_future();
    failed.set_value(Status::Unavailable(
        down ? "executor is shut down" : "executor queue is full"));
  }
  return submission;
}

std::vector<Result<QueryResult>> Executor::RunBatch(
    std::vector<Request> requests) {
  std::vector<std::future<Result<QueryResult>>> futures;
  futures.reserve(requests.size());
  for (Request& r : requests) {
    futures.push_back(Submit(std::move(r.plan), std::move(r.document)));
  }
  std::vector<Result<QueryResult>> results;
  results.reserve(futures.size());
  for (auto& f : futures) results.push_back(f.get());
  return results;
}

void Executor::WorkerLoop() {
  // All counter increments below (and inside the evaluators) buffer into
  // this worker's shadow and merge at request boundaries; see executor.h.
  obs::ShadowCounters shadow;
#ifndef TREEQ_OBS_DISABLED
  // The two evaluator counters a profile attributes per request. GetCounter
  // registers on first use and returns a stable pointer, so hoisting the
  // lookups out of the loop leaves the per-request snapshot as two probes
  // of the shadow's thread-private map.
  obs::Counter* const words_scanned =
      obs::StatsRegistry::Global().GetCounter("axes.words_scanned");
  obs::Counter* const label_hits =
      obs::StatsRegistry::Global().GetCounter("labelindex.hits");
#endif
  while (std::optional<WorkItem> item = queue_.Pop()) {
    if (item->is_child()) {
      // A forked child task of another request's fork-join group
      // (RunChildren). The child flushes the shadow itself before
      // signaling its group, so the forking request's "future ready
      // implies stats visible" contract holds even when children run on
      // foreign workers.
      item->child();
      continue;
    }
    std::optional<Task>& task = item->request;
    auto start = std::chrono::steady_clock::now();
#ifndef TREEQ_OBS_DISABLED
    // The shadow was flushed at the previous request boundary, but snapshot
    // the buffered deltas anyway so the attribution stays correct even if
    // a future change leaves residue in the buffer.
    const bool profiling = obs::FlightRecorder::Global().enabled() &&
                           task->plan != nullptr &&
                           task->document != nullptr;
    const uint64_t words_before =
        profiling ? shadow.BufferedDelta(words_scanned) : 0;
    const uint64_t labels_before =
        profiling ? shadow.BufferedDelta(label_hits) : 0;
    uint64_t queue_wait_ns = 0;
    if (task->enqueue_ns != 0) {
      const uint64_t dequeue_ns = static_cast<uint64_t>(
          std::chrono::duration_cast<std::chrono::nanoseconds>(
              start.time_since_epoch())
              .count());
      queue_wait_ns =
          dequeue_ns > task->enqueue_ns ? dequeue_ns - task->enqueue_ns : 0;
      TREEQ_OBS_HISTOGRAM("engine.queue_wait_ns", queue_wait_ns);
    }
#endif
    Result<QueryResult> result =
        RunOne(task->plan, task->document, task->context,
               task->allow_degraded, task->parallelism, &group_runner_);
    auto elapsed_ns = static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now() - start)
            .count());
    TREEQ_OBS_INC("engine.exec.requests");
    if (!result.ok()) TREEQ_OBS_INC("engine.exec.errors");
    TREEQ_OBS_HISTOGRAM("engine.exec.request_ns", elapsed_ns);
    TREEQ_OBS_HISTOGRAM("engine.execute_ns", elapsed_ns);
    if (task->context != nullptr) {
      TREEQ_OBS_COUNT("exec.visits", task->context->visits_used());
    }
#ifndef TREEQ_OBS_DISABLED
    if (profiling) {
      const Plan& plan = *task->plan;
      obs::QueryProfile profile;
      profile.id = task->profile_id;
      profile.language = LanguageName(plan.language());
      profile.query_hash = obs::HashQueryText(plan.text());
      profile.query = plan.text().substr(0, obs::kMaxQueryChars);
      profile.document = task->document->name();
      profile.engine =
          result.ok() ? result.value().engine : plan.route_name();
      profile.explain = plan.Explain();
      profile.cache_hit = task->cache_hit;
      profile.degraded = result.ok() && result.value().degraded;
      if (result.ok()) {
        profile.partitions = result.value().partitions;
        profile.parallel_ns = result.value().parallel_ns;
        profile.merge_ns = result.value().merge_ns;
      }
      profile.ok = result.ok();
      profile.status = StatusCodeName(result.status().code());
      profile.queue_wait_ns = queue_wait_ns;
      // A cache hit reused a plan some earlier request paid to compile.
      profile.compile_ns = task->cache_hit ? 0 : plan.compile_ns();
      profile.execute_ns = elapsed_ns;
      profile.visits =
          task->context != nullptr ? task->context->visits_used() : 0;
      profile.words_scanned =
          shadow.BufferedDelta(words_scanned) - words_before;
      profile.label_index_hits =
          shadow.BufferedDelta(label_hits) - labels_before;
      profile.estimated_visits = plan.EstimatedVisits(*task->document);
      // Record before the flush + set_value below: once the caller sees
      // the future ready, the profile is visible in the recorder.
      TREEQ_OBS_FLIGHT_RECORD(std::move(profile));
    }
#endif
    // Merge this request's counter deltas before the caller can observe
    // the future: "future ready" implies "stats visible".
    shadow.Flush();
    task->promise.set_value(std::move(result));
  }
}

void Executor::RunChildren(std::vector<std::function<void()>> tasks) {
  if (tasks.empty()) return;
  struct Group {
    std::mutex mu;
    std::condition_variable cv;
    size_t pending = 0;
  };
  auto group = std::make_shared<Group>();
  group->pending = tasks.size();
  auto wrap = [&group](std::function<void()> task) {
    return [group, task = std::move(task)] {
      task();
      // Make the child's buffered counter deltas globally visible before
      // the forking request can observe completion, so the request-level
      // "future ready implies stats visible" contract survives children
      // running on foreign workers.
      if (obs::ShadowCounters* shadow = obs::ShadowCounters::Current()) {
        shadow->Flush();
      }
      std::lock_guard<std::mutex> lock(group->mu);
      if (--group->pending == 0) group->cv.notify_all();
    };
  };
  // Queue all but the first child AHEAD of pending requests (children are
  // bounded by the fork degree, so jumping the capacity bound is safe) and
  // run the first on this thread. A front-push only fails when the queue
  // closed mid-shutdown; then the child runs inline — completion never
  // depends on the pool.
  std::function<void()> first = wrap(std::move(tasks[0]));
  for (size_t i = 1; i < tasks.size(); ++i) {
    std::function<void()> child = wrap(std::move(tasks[i]));
    WorkItem item;
    item.child = child;
    if (!queue_.TryPushFront(std::move(item))) child();
  }
  first();
  // Help-run queued children — ours or another group's, both keep the
  // system draining — until this group completes. The front-children
  // invariant makes the blocking step safe: TryPopIf failing means no
  // child tasks are queued anywhere, so every child of this group is
  // already running on some worker, and that worker will signal the cv.
  for (;;) {
    {
      std::lock_guard<std::mutex> lock(group->mu);
      if (group->pending == 0) return;
    }
    std::optional<WorkItem> item =
        queue_.TryPopIf([](const WorkItem& w) { return w.is_child(); });
    if (item.has_value()) {
      item->child();
      continue;
    }
    std::unique_lock<std::mutex> lock(group->mu);
    group->cv.wait(lock, [&group] { return group->pending == 0; });
    return;
  }
}

}  // namespace engine
}  // namespace treeq
