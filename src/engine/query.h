#ifndef TREEQ_ENGINE_QUERY_H_
#define TREEQ_ENGINE_QUERY_H_

#include <cstdint>
#include <string>
#include <variant>
#include <vector>

#include "cq/ast.h"
#include "query/parse.h"
#include "tree/node_set.h"

/// \file query.h
/// The unified result type of every treeq query execution. Before this
/// header, the engine exposed three result shapes — a NodeSet for
/// node-selecting languages, a TupleSet for k-ary CQs, and a bool (plus an
/// `is_boolean` flag) for sentences — spread across parallel fields that
/// were all populated-or-garbage. `treeq::QueryResult` collapses them into
/// one tagged variant: exactly one of the three shapes is held, accessors
/// check the tag, and execution metadata (engine route, degradation flag,
/// parallel-evaluation attribution) rides alongside.
///
/// Both `engine::Plan::Execute` and `engine::Executor::Submit` return this
/// type; the older `Run` overloads are thin wrappers that return it too.

namespace treeq {

/// Result tuples of a k-ary query (same type as cq::TupleSet).
using TupleSet = std::vector<std::vector<NodeId>>;

/// The answer of one (plan, document) execution.
struct QueryResult {
  Language language = Language::kXPath;

  /// True when the engine answered with the streaming fallback instead of
  /// the set-at-a-time evaluator (graceful degradation under a budget).
  bool degraded = false;

  /// The evaluator that produced this answer ("xpath.set_at_a_time",
  /// "xpath.stream", "cq.x_property", ...); a string literal.
  const char* engine = "";

  /// Why the cost-based router picked `engine` (one line, e.g.
  /// "cq.twigstack cost=52 (native xpath.set_at_a_time cost=804)").
  /// Empty when the router did not run: budget-bounded requests keep the
  /// historical native routing, and cache hits reuse a stored result.
  std::string route_rationale;

  /// Parallel-evaluation attribution (zero when the run stayed serial):
  /// the maximum fork degree of any parallel step, wall time spent inside
  /// forked kernels, and wall time merging partial results.
  int partitions = 0;
  uint64_t parallel_ns = 0;
  uint64_t merge_ns = 0;

  /// The answer itself: a NodeSet (kXPath, kDatalog), a TupleSet (k-ary
  /// kCq), or a bool (Boolean kCq, kFo sentences).
  std::variant<NodeSet, TupleSet, bool> value;

  bool is_boolean() const { return std::holds_alternative<bool>(value); }
  bool is_nodes() const { return std::holds_alternative<NodeSet>(value); }
  bool is_tuples() const { return std::holds_alternative<TupleSet>(value); }

  /// Shape accessors. Calling one that does not match the held alternative
  /// is a programmer error (std::get throws std::bad_variant_access).
  bool boolean() const { return std::get<bool>(value); }
  const NodeSet& nodes() const { return std::get<NodeSet>(value); }
  NodeSet& nodes() { return std::get<NodeSet>(value); }
  const TupleSet& tuples() const { return std::get<TupleSet>(value); }
  TupleSet& tuples() { return std::get<TupleSet>(value); }

  /// Uniform "how much did this select" accessor for logging/benches:
  /// |nodes|, |tuples|, or 0/1 for a Boolean answer.
  size_t cardinality() const {
    if (is_boolean()) return boolean() ? 1 : 0;
    if (is_tuples()) return tuples().size();
    return static_cast<size_t>(nodes().size());
  }
};

}  // namespace treeq

#endif  // TREEQ_ENGINE_QUERY_H_
