#ifndef TREEQ_ENGINE_TASK_GROUP_H_
#define TREEQ_ENGINE_TASK_GROUP_H_

#include <functional>
#include <vector>

#include "util/task_runner.h"

/// \file task_group.h
/// The par::TaskRunner that schedules forked child tasks on an Executor's
/// own worker pool — intra-query parallelism without a second thread pool.
///
/// A worker that forks does not sleep on its children: RunChildren pushes
/// them to the FRONT of the executor's bounded queue (bypassing the
/// capacity bound; see BoundedQueue::TryPushFront), runs one inline, and
/// then help-runs queued child tasks until its group drains. Because
/// children always sit ahead of requests in the queue, a helping worker
/// never starts a new client request while child work is pending, and a
/// single-worker pool completes a forked request by itself — the fork-join
/// cannot deadlock at any pool size.

namespace treeq {
namespace engine {

class Executor;

/// Adapter: par::TaskRunner over Executor::RunChildren. One instance lives
/// inside each Executor (Executor::task_runner()); it holds no state of
/// its own and is thread-safe. Tasks must follow the TaskRunner contract
/// (no throwing, no nested RunAll).
class TaskGroupRunner : public par::TaskRunner {
 public:
  explicit TaskGroupRunner(Executor* executor) : executor_(executor) {}

  void RunAll(std::vector<std::function<void()>> tasks) override;

 private:
  Executor* executor_;
};

}  // namespace engine
}  // namespace treeq

#endif  // TREEQ_ENGINE_TASK_GROUP_H_
