#include "engine/task_group.h"

#include "engine/executor.h"

namespace treeq {
namespace engine {

void TaskGroupRunner::RunAll(std::vector<std::function<void()>> tasks) {
  executor_->RunChildren(std::move(tasks));
}

}  // namespace engine
}  // namespace treeq
